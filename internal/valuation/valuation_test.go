package valuation

import (
	"testing"

	"pw/internal/cond"
	"pw/internal/rel"
	"pw/internal/sym"
	"pw/internal/table"
	"pw/internal/value"
)

func v(n string) value.Value { return value.Var(n) }
func k(n string) value.Value { return value.Const(n) }

// mk builds a valuation from name pairs, the way the map-based seed tests
// wrote literals.
func mk(pairs ...string) V {
	vars := make([]sym.ID, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		vars = append(vars, sym.Var(pairs[i]))
	}
	val := Make(sym.NewUniverse(vars))
	for i := 0; i < len(pairs); i += 2 {
		val.Set(sym.Var(pairs[i]), sym.Const(pairs[i+1]))
	}
	return val
}

func ids(names ...string) []sym.ID {
	out := make([]sym.ID, len(names))
	for i, n := range names {
		out[i] = sym.Const(n)
	}
	return out
}

func uni(names ...string) *sym.Universe {
	vars := make([]sym.ID, len(names))
	for i, n := range names {
		vars[i] = sym.Var(n)
	}
	return sym.NewUniverse(vars)
}

func TestValueApplication(t *testing.T) {
	val := mk("x", "7")
	if val.Value(k("3")) != sym.Const("3") {
		t.Error("constants must map to themselves")
	}
	if val.Value(v("x")) != sym.Const("7") {
		t.Error("variable lookup broken")
	}
}

func TestUnboundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unbound variable must panic")
		}
	}()
	mk().Value(v("ghost"))
}

func TestSatisfies(t *testing.T) {
	val := mk("x", "1", "y", "2")
	if !val.Satisfies(cond.Conj(cond.EqAtom(v("x"), k("1")), cond.NeqAtom(v("x"), v("y")))) {
		t.Error("satisfied conjunction rejected")
	}
	if val.Satisfies(cond.Conj(cond.EqAtom(v("x"), v("y")))) {
		t.Error("x=y with x=1,y=2 accepted")
	}
}

// Example 2.1 of the paper: σx=2, σy=3, σz=0, σv=5 maps the Fig. 1 Codd
// table Ta onto the instance Ia.
func TestPaperExample21(t *testing.T) {
	ta := table.New("T", 3)
	ta.AddTuple(k("0"), k("1"), v("x"))
	ta.AddTuple(v("y"), v("z"), k("1"))
	ta.AddTuple(k("2"), k("0"), v("v"))
	sigma := mk("x", "2", "y", "3", "z", "0", "v", "5")
	got := sigma.Table(ta)
	want := rel.NewRelation("T", 3)
	want.AddRow("0", "1", "2")
	want.AddRow("3", "0", "1")
	want.AddRow("2", "0", "5")
	if !got.Equal(want) {
		t.Errorf("σTa = %v, want %v", got, want)
	}
}

func TestTableDropsFailingLocalConds(t *testing.T) {
	tb := table.New("T", 1)
	tb.Add(table.Row{Values: value.NewTuple(v("x")), Cond: cond.Conj(cond.EqAtom(v("x"), k("1")))})
	tb.Add(table.Row{Values: value.NewTuple(k("9")), Cond: cond.Conj(cond.NeqAtom(v("x"), k("1")))})
	sigma := mk("x", "1")
	got := sigma.Table(tb)
	if got.Len() != 1 || !got.Has(rel.Fact{"1"}) {
		t.Errorf("world = %v, want {(1)}", got)
	}
}

func TestDatabaseGlobalGate(t *testing.T) {
	tb := table.New("T", 1)
	tb.Global = cond.Conj(cond.EqAtom(v("x"), k("1")))
	tb.AddTuple(v("x"))
	d := table.DB(tb)
	if mk("x", "2").Database(d) != nil {
		t.Error("valuation violating the global condition must denote no world")
	}
	w := mk("x", "1").Database(d)
	if w == nil || !w.Relation("T").Has(rel.Fact{"1"}) {
		t.Errorf("world = %v", w)
	}
}

func TestEnumerateCountsAndOrder(t *testing.T) {
	var seen []string
	Enumerate(uni("a", "b"), ids("0", "1"), func(val V) bool {
		a, _ := val.Lookup("a")
		b, _ := val.Lookup("b")
		seen = append(seen, a+b)
		return false
	})
	want := []string{"00", "01", "10", "11"}
	if len(seen) != len(want) {
		t.Fatalf("enumerated %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("position %d = %s, want %s", i, seen[i], want[i])
		}
	}
	if Count(uni("a", "b", "c"), ids("0", "1")) != 8 {
		t.Error("Count broken")
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	n := 0
	stopped := Enumerate(uni("a"), ids("0", "1", "2"), func(val V) bool {
		n++
		a, _ := val.Lookup("a")
		return a == "1"
	})
	if !stopped || n != 2 {
		t.Errorf("stopped=%v after %d, want true after 2", stopped, n)
	}
}

func TestEnumerateNoVars(t *testing.T) {
	n := 0
	Enumerate(uni(), ids("0"), func(val V) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("no-variable enumeration must visit exactly once, got %d", n)
	}
	// Empty domain with no vars still visits the empty valuation once.
	n = 0
	Enumerate(uni(), nil, func(val V) bool { n++; return false })
	if n != 1 {
		t.Errorf("empty-domain no-var enumeration visited %d times", n)
	}
}

func TestEnumerateEmptyDomainWithVars(t *testing.T) {
	if Enumerate(uni("a"), nil, func(V) bool { return true }) {
		t.Error("no valuations exist over an empty domain")
	}
}

func TestDomainIncludesFreshPerVariable(t *testing.T) {
	tb := table.New("T", 2)
	tb.AddTuple(k("1"), v("x"))
	tb.AddTuple(v("y"), k("2"))
	d := table.DB(tb)
	extra := rel.NewInstance()
	extra.EnsureRelation("T", 2).AddRow("3", "4")
	dom := Domain(d, extra)
	want := map[string]bool{"1": true, "2": true, "3": true, "4": true}
	fresh := 0
	for _, c := range dom {
		if want[c.Name()] {
			delete(want, c.Name())
		} else {
			fresh++
		}
	}
	if len(want) != 0 {
		t.Errorf("missing constants %v in domain %v", want, dom)
	}
	if fresh != 2 {
		t.Errorf("want 2 fresh constants (one per variable), got %d", fresh)
	}
}

func TestValuationString(t *testing.T) {
	s := mk("b", "2", "a", "1").String()
	if s != "{a→1, b→2}" {
		t.Errorf("String = %q", s)
	}
}

func TestClone(t *testing.T) {
	a := mk("x", "1")
	b := a.Clone()
	b.Set(sym.Var("x"), sym.Const("2"))
	if got, _ := a.Lookup("x"); got != "1" {
		t.Error("Clone aliases")
	}
}
