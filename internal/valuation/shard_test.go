package valuation

import (
	"sort"
	"sync"
	"testing"

	"pw/internal/sym"
)

func varsU(names ...string) *sym.Universe {
	vs := make([]sym.ID, len(names))
	for i, n := range names {
		vs[i] = sym.Var(n)
	}
	return sym.NewUniverse(vs)
}

// collect gathers every valuation an enumerator visits as a sorted list of
// canonical strings, with a mutex so parallel enumerators can share it.
type collect struct {
	mu   sync.Mutex
	seen []string
}

func (c *collect) add(v V) bool {
	c.mu.Lock()
	c.seen = append(c.seen, v.String())
	c.mu.Unlock()
	return false
}

func (c *collect) sorted() []string {
	sort.Strings(c.seen)
	return c.seen
}

func lowerThreshold(t *testing.T) {
	t.Helper()
	old := MinShardedSpace
	MinShardedSpace = 1
	t.Cleanup(func() { MinShardedSpace = old })
}

func TestShardsPartitionTheSpace(t *testing.T) {
	lowerThreshold(t)
	u := varsU("x", "y", "z")
	domain := ids("a", "b", "c", "d")
	shards, ok := Shards(u, domain, 7)
	if !ok {
		t.Fatal("expected shardable space")
	}
	total := Count(u, domain)
	covered := 0
	prevHi := 0
	for _, s := range shards {
		if s.Lo != prevHi {
			t.Fatalf("gap: shard starts at %d, previous ended at %d", s.Lo, prevHi)
		}
		covered += s.Hi - s.Lo
		prevHi = s.Hi
	}
	if covered != total || prevHi != total {
		t.Fatalf("shards cover %d of %d", covered, total)
	}
	// Ranged enumeration over all shards visits exactly the sequential set.
	var seq, par collect
	Enumerate(u, domain, seq.add)
	for _, s := range shards {
		EnumerateRange(u, domain, s, par.add)
	}
	if got, want := par.seen, seq.seen; len(got) != len(want) {
		t.Fatalf("ranges visited %d valuations, sequential %d", len(got), len(want))
	}
	for i := range seq.seen {
		if par.seen[i] != seq.seen[i] {
			t.Fatalf("range order diverges at %d: %s vs %s", i, par.seen[i], seq.seen[i])
		}
	}
}

func TestEnumerateShardedVisitsSameSet(t *testing.T) {
	lowerThreshold(t)
	u := varsU("x", "y", "z")
	domain := ids("a", "b", "c")
	var seq collect
	Enumerate(u, domain, seq.add)
	for _, workers := range []int{1, 2, 8} {
		var par collect
		if EnumerateSharded(u, domain, workers, par.add) {
			t.Fatalf("workers=%d: no-exit enumeration reported found", workers)
		}
		s, p := seq.sorted(), par.sorted()
		if len(s) != len(p) {
			t.Fatalf("workers=%d: visited %d, want %d", workers, len(p), len(s))
		}
		for i := range s {
			if s[i] != p[i] {
				t.Fatalf("workers=%d: set diverges at %d: %s vs %s", workers, i, p[i], s[i])
			}
		}
	}
}

func TestEnumerateShardedEarlyExit(t *testing.T) {
	lowerThreshold(t)
	u := varsU("x", "y", "z")
	domain := ids("a", "b", "c", "d")
	target := sym.Const("c")
	for _, workers := range []int{1, 2, 8} {
		found := EnumerateSharded(u, domain, workers, func(v V) bool {
			return v.Vals[0] == target && v.Vals[1] == target && v.Vals[2] == target
		})
		if !found {
			t.Fatalf("workers=%d: witness not found", workers)
		}
		missed := EnumerateSharded(u, domain, workers, func(v V) bool { return false })
		if missed {
			t.Fatalf("workers=%d: found nonexistent witness", workers)
		}
	}
}

func TestEnumerateCanonicalShardedVisitsSameSet(t *testing.T) {
	lowerThreshold(t)
	u := varsU("x", "y", "z", "w")
	base := ids("a", "b")
	var seq collect
	EnumerateCanonical(u, base, "~z", seq.add)
	for _, workers := range []int{1, 2, 8} {
		var par collect
		if EnumerateCanonicalSharded(u, base, "~z", workers, par.add) {
			t.Fatalf("workers=%d: no-exit enumeration reported found", workers)
		}
		s, p := seq.sorted(), par.sorted()
		if len(s) != len(p) {
			t.Fatalf("workers=%d: visited %d, want %d", workers, len(p), len(s))
		}
		for i := range s {
			if s[i] != p[i] {
				t.Fatalf("workers=%d: set diverges at %d: %s vs %s", workers, i, p[i], s[i])
			}
		}
	}
}

func TestEnumerateCanonicalShardedEarlyExit(t *testing.T) {
	lowerThreshold(t)
	u := varsU("x", "y", "z")
	base := ids("a", "b", "c")
	fresh1 := sym.Const("~z1")
	for _, workers := range []int{2, 8} {
		// A witness needing two distinct fresh constants: only reachable
		// through the restricted-growth introduction order.
		found := EnumerateCanonicalSharded(u, base, "~z", workers, func(v V) bool {
			return v.Vals[2] == fresh1
		})
		if !found {
			t.Fatalf("workers=%d: canonical witness not found", workers)
		}
	}
}

func TestCanonCountMatchesEnumeration(t *testing.T) {
	for _, tc := range []struct{ b, k int }{{0, 1}, {0, 3}, {1, 2}, {2, 3}, {3, 2}} {
		u := varsU("x", "y", "z", "w")
		vs := u.Vars()[:tc.k]
		uu := sym.NewUniverse(vs)
		base := ids("a", "b", "c")[:tc.b]
		n := 0
		EnumerateCanonical(uu, base, "~z", func(V) bool { n++; return false })
		if got := canonCount(tc.b, tc.k, 1<<30); got != n {
			t.Errorf("canonCount(%d,%d) = %d, enumeration visits %d", tc.b, tc.k, got, n)
		}
	}
}
