// Sharded enumeration: the parallel counterparts of Enumerate and
// EnumerateCanonical. The d^k odometer space (resp. the restricted-growth
// canonical space) is split into balanced prefix shards; a worker pool
// claims shards from an atomic cursor and enumerates each independently,
// and a shared cancellation flag lets the first witness in any shard abort
// all others — exactly the structure the decision procedures need for
// their existential searches (and, negated, for their universal ones).
//
// The determinism contract of the engine rests on a genericity argument,
// not on visit order: every consumer predicate is order-independent (the
// existence of a satisfying valuation does not depend on which shard finds
// it first), so results are identical across worker counts even though
// internal visit order is not. Workers <= 1 dispatches to the sequential
// enumerators, reproducing their visit order bit-for-bit.
package valuation

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pw/internal/obs"
	"pw/internal/sym"
)

// MinShardedSpace is the smallest search-space size worth sharding:
// below it, goroutine startup and shard bookkeeping dominate and the
// sharded enumerators fall back to their sequential counterparts.
// Measured on full-space sweeps (the universal, no-early-exit worst
// case), the workers=8 overhead over sequential was +94% at a 4096
// space and still +25% at 32k; early-exit existential searches
// amortize better, so the cutoff sits at the point where even the
// worst case is within noise of sequential rather than lower. Tests
// lower it to force the parallel machinery onto small inputs.
var MinShardedSpace = 32768

// ShardsPerWorker oversubscribes shards relative to workers so that
// uneven shard costs (early-exit predicates, condition pruning) still
// balance across the pool. Other shard consumers (internal/worlds) use
// the same factor for consistent granularity.
const ShardsPerWorker = 8

// Range is a contiguous slice [Lo, Hi) of the odometer space of
// Enumerate: position n is the valuation whose slot indices are the
// base-|domain| digits of n, most-significant slot first.
type Range struct{ Lo, Hi int }

// maxInt is the saturation cap for space-size arithmetic (platform int,
// so 32-bit builds stay correct).
const maxInt = int(^uint(0) >> 1)

// pow returns d^k saturating at cap, with ok=false on saturation.
func pow(d, k, cap int) (int, bool) {
	n := 1
	for i := 0; i < k; i++ {
		if d != 0 && n > cap/d {
			return cap, false
		}
		n *= d
	}
	return n, true
}

// Shards splits the odometer space over u and domain into at most n
// balanced contiguous ranges. ok is false when the space is degenerate,
// too small to be worth sharding (MinShardedSpace), or overflows int —
// callers should then use the sequential enumerator.
func Shards(u *sym.Universe, domain []sym.ID, n int) ([]Range, bool) {
	k := u.Len()
	if n <= 1 || k == 0 || len(domain) == 0 {
		return nil, false
	}
	total, ok := pow(len(domain), k, maxInt)
	if !ok || total < MinShardedSpace {
		return nil, false
	}
	if n > total {
		n = total
	}
	size := (total + n - 1) / n
	out := make([]Range, 0, n)
	for lo := 0; lo < total; lo += size {
		out = append(out, Range{Lo: lo, Hi: min(lo+size, total)})
	}
	return out, true
}

// EnumerateRange enumerates the valuations of one Range in odometer
// order, with the same early-exit contract as Enumerate. The valuation
// passed to fn is reused between calls; clone it to retain it.
func EnumerateRange(u *sym.Universe, domain []sym.ID, r Range, fn func(V) bool) bool {
	v := Make(u)
	idx := make([]int, u.Len())
	return enumerateRange(v, idx, domain, r, nil, fn)
}

// enumerateRange is the workhorse behind EnumerateRange and the sharded
// worker loop: it reuses the caller's valuation and digit buffer and
// checks the shared stop flag (when given) before every candidate.
func enumerateRange(v V, idx []int, domain []sym.ID, r Range, stop *atomic.Bool, fn func(V) bool) bool {
	k, d := len(idx), len(domain)
	x := r.Lo
	for i := k - 1; i >= 0; i-- {
		idx[i] = x % d
		x /= d
	}
	for n := r.Lo; n < r.Hi; n++ {
		if stop != nil && stop.Load() {
			return false
		}
		for i := 0; i < k; i++ {
			v.Vals[i] = domain[idx[i]]
		}
		if fn(v) {
			return true
		}
		for i := k - 1; i >= 0; i-- {
			idx[i]++
			if idx[i] < d {
				break
			}
			idx[i] = 0
		}
	}
	return false
}

// ParallelAny is the engine's one work-stealing pool with cancellation:
// workers goroutines claim task indices [0, n) from an atomic cursor;
// the first task returning true sets the shared stop flag, which both
// halts claiming and is handed to every task so long-running ones
// (shard enumerations) can poll it. Returns whether any task returned
// true. Tasks run concurrently — they must synchronize shared state.
// With workers <= 1 tasks run sequentially in index order (stopping at
// the first true), preserving deterministic visit order for callers
// that need it.
//
// Every parallel fan-out of the engine — sharded enumeration here, the
// per-fact coNP checks and answer sweeps in internal/decide, the world
// materialization in internal/worlds — runs on this primitive, so the
// claim/stop protocol exists exactly once.
func ParallelAny(workers, n int, task func(i int, stop *atomic.Bool) bool) bool {
	if workers > n {
		workers = n
	}
	var stop atomic.Bool
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if stop.Load() {
				break
			}
			if task(i, &stop) {
				return true
			}
		}
		return false
	}
	var next atomic.Int64
	var found atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || stop.Load() {
					return
				}
				if task(i, &stop) {
					found.Store(true)
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return found.Load()
}

// EnumerateSharded is the parallel Enumerate: the same space, the same
// early-exit contract, but visited by workers goroutines over balanced
// shards, with the first fn returning true cancelling every other shard.
//
// fn may be called from multiple goroutines concurrently (each worker owns
// the valuation it passes); callers guarding shared state must synchronize.
// Workers <= 1, a zero-variable universe, and spaces below MinShardedSpace
// all dispatch to the sequential Enumerate, bit-for-bit.
func EnumerateSharded(u *sym.Universe, domain []sym.ID, workers int, fn func(V) bool) bool {
	shards, ok := Shards(u, domain, workers*ShardsPerWorker)
	if workers <= 1 || !ok {
		return Enumerate(u, domain, fn)
	}
	return ParallelAny(workers, len(shards), func(s int, stop *atomic.Bool) bool {
		v := Make(u)
		idx := make([]int, u.Len())
		return enumerateRange(v, idx, domain, shards[s], stop, fn)
	})
}

// canonPrefix is a partial canonical valuation: the first len(vals) slots
// plus the number of fresh constants introduced so far.
type canonPrefix struct {
	vals []sym.ID
	used int
}

// expandCanon extends every prefix by one slot, preserving the visit
// order of EnumerateCanonical (base constants first, then fresh constants
// in first-use order under the restricted-growth constraint).
func expandCanon(prefixes []canonPrefix, base, fresh []sym.ID, k int) []canonPrefix {
	out := make([]canonPrefix, 0, len(prefixes)*(len(base)+1))
	for _, p := range prefixes {
		for _, c := range base {
			vals := append(append(make([]sym.ID, 0, len(p.vals)+1), p.vals...), c)
			out = append(out, canonPrefix{vals: vals, used: p.used})
		}
		for j := 0; j <= p.used && j < k; j++ {
			vals := append(append(make([]sym.ID, 0, len(p.vals)+1), p.vals...), fresh[j])
			used := p.used
			if j == p.used {
				used++
			}
			out = append(out, canonPrefix{vals: vals, used: used})
		}
	}
	return out
}

// canonCount returns the number of canonical valuations over k slots and
// b base constants, saturating at cap. memo[used] holds the count for the
// current suffix length; slot i offers b+used choices that keep `used`
// unchanged plus one introduction (while used < k).
func canonCount(b, k, cap int) int {
	memo := make([]int, k+2)
	for used := range memo {
		memo[used] = 1
	}
	for i := k - 1; i >= 0; i-- {
		next := make([]int, k+2)
		for used := 0; used <= k; used++ {
			stay := b + used
			intro := 0
			if used < k {
				intro = memo[used+1]
			} else {
				stay = b + k
			}
			n := satMul(stay, memo[used], cap)
			next[used] = satAdd(n, intro, cap)
		}
		memo = next
	}
	return memo[0]
}

func satMul(a, b, cap int) int {
	if a == 0 || b == 0 {
		return 0
	}
	if a > cap/b {
		return cap
	}
	return a * b
}

func satAdd(a, b, cap int) int {
	if a > cap-b {
		return cap
	}
	return a + b
}

// canonSuffix runs the EnumerateCanonical recursion over slots [i, k)
// with a precomputed fresh-constant pool and a shared stop flag.
func canonSuffix(v V, base, fresh []sym.ID, i, used, k int, stop *atomic.Bool, fn func(V) bool) bool {
	if stop.Load() {
		return false
	}
	if i == k {
		return fn(v)
	}
	for _, c := range base {
		v.Vals[i] = c
		if canonSuffix(v, base, fresh, i+1, used, k, stop, fn) {
			return true
		}
	}
	for j := 0; j <= used && j < k; j++ {
		v.Vals[i] = fresh[j]
		next := used
		if j == used {
			next++
		}
		if canonSuffix(v, base, fresh, i+1, next, k, stop, fn) {
			return true
		}
	}
	return false
}

// EnumerateCanonicalSharded is the parallel EnumerateCanonical: the
// restricted-growth space is split into prefix shards (assignments of the
// first few slots), and workers run the suffix recursion of each shard
// with shared cancellation. The fresh-constant names prefix0, prefix1, …
// are interned up front, so naming is identical to the sequential
// enumerator regardless of which shard first uses a fresh constant.
//
// fn may be called from multiple goroutines concurrently. Workers <= 1
// and small spaces dispatch to the sequential EnumerateCanonical.
func EnumerateCanonicalSharded(u *sym.Universe, base []sym.ID, prefix string, workers int, fn func(V) bool) bool {
	return EnumerateCanonicalShardedObserved(u, base, prefix, workers, nil, fn)
}

// EnumerateCanonicalShardedObserved is EnumerateCanonicalSharded with a
// cost-accounting sink: it records the number of prefix shards spawned
// (1 when the search dispatched to the sequential enumerator) and one
// cancellation event when a witness aborted the remaining shards. A nil
// sink makes it exactly EnumerateCanonicalSharded.
func EnumerateCanonicalShardedObserved(u *sym.Universe, base []sym.ID, prefix string, workers int, c *obs.Cost, fn func(V) bool) bool {
	k := u.Len()
	if workers <= 1 || k < 2 || canonCount(len(base), k, MinShardedSpace) < MinShardedSpace {
		c.Add(obs.DecideShards, 1)
		return EnumerateCanonical(u, base, prefix, fn)
	}
	fresh := make([]sym.ID, k)
	for j := range fresh {
		fresh[j] = sym.Const(fmt.Sprintf("%s%d", prefix, j))
	}
	target := workers * ShardsPerWorker
	prefixes := []canonPrefix{{}}
	depth := 0
	for depth < k-1 && len(prefixes) < target {
		prefixes = expandCanon(prefixes, base, fresh, k)
		depth++
	}
	c.Add(obs.DecideShards, int64(len(prefixes)))
	found := ParallelAny(workers, len(prefixes), func(s int, stop *atomic.Bool) bool {
		v := Make(u)
		p := prefixes[s]
		copy(v.Vals, p.vals)
		return canonSuffix(v, base, fresh, depth, p.used, k, stop, fn)
	})
	if found {
		c.Add(obs.DecideCancels, 1)
	}
	return found
}
