// Package rel implements complete-information databases (§2.1 of the
// paper): relations of ground facts and instances, i.e. named vectors of
// relations. Relations have set semantics with a canonical sorted order for
// printing and comparison.
//
// Facts are stored as interned-symbol tuples (internal/sym) deduplicated by
// 64-bit fingerprint with exact-comparison collision buckets; the
// string-based Fact type survives only as the API boundary, interned on Add
// and resolved on Facts(). Engine code iterates Tuples() and probes
// Contains() without ever touching a string.
package rel

import (
	"fmt"
	"sort"
	"strings"

	"pw/internal/sym"
)

// tupleHash fingerprints a stored tuple. It is a variable so that tests
// can force universal collisions and exercise the bucket fallback.
var tupleHash = sym.HashIDs

// Fact is a ground tuple at the API boundary: a fixed-arity sequence of
// constant names.
type Fact []string

// Key returns a canonical encoding of the fact usable as a map key. The
// separator 0x00 cannot occur in constant names produced by this library.
// Engine paths deduplicate by fingerprint instead; Key survives for
// debugging and display-layer consumers.
func (f Fact) Key() string { return strings.Join(f, "\x00") }

// Intern converts the fact to its interned-symbol form.
func (f Fact) Intern() sym.Tuple {
	t := make(sym.Tuple, len(f))
	for i, c := range f {
		t[i] = sym.Const(c)
	}
	return t
}

// ResolveFact converts an interned tuple back to a boundary Fact.
func ResolveFact(t sym.Tuple) Fact {
	f := make(Fact, len(t))
	for i, id := range t {
		f[i] = id.Name()
	}
	return f
}

// Clone returns a copy of f.
func (f Fact) Clone() Fact {
	c := make(Fact, len(f))
	copy(c, f)
	return c
}

// Equal reports component-wise equality.
func (f Fact) Equal(g Fact) bool {
	if len(f) != len(g) {
		return false
	}
	for i := range f {
		if f[i] != g[i] {
			return false
		}
	}
	return true
}

// String renders the fact as (a, b, c).
func (f Fact) String() string { return "(" + strings.Join(f, ", ") + ")" }

// Compare orders facts lexicographically.
func (f Fact) Compare(g Fact) int {
	n := min(len(f), len(g))
	for i := 0; i < n; i++ {
		if f[i] < g[i] {
			return -1
		}
		if f[i] > g[i] {
			return 1
		}
	}
	switch {
	case len(f) < len(g):
		return -1
	case len(f) > len(g):
		return 1
	}
	return 0
}

// Relation is a named finite set of facts of a fixed arity, stored as
// interned tuples in insertion order with a fingerprint index.
type Relation struct {
	Name   string
	Arity  int
	tuples []sym.Tuple
	index  map[uint64][]int32 // fingerprint -> indices into tuples
}

// NewRelation returns an empty relation with the given name and arity.
func NewRelation(name string, arity int) *Relation {
	return &Relation{Name: name, Arity: arity, index: make(map[uint64][]int32)}
}

// Add inserts the fact; it panics on arity mismatch (a programming error,
// not a data error: arities are fixed parameters in the data-complexity
// setting).
func (r *Relation) Add(f Fact) {
	if len(f) != r.Arity {
		panic(fmt.Sprintf("rel: fact %v has arity %d, relation %s expects %d",
			f, len(f), r.Name, r.Arity))
	}
	r.Insert(f.Intern())
}

// AddRow is a convenience wrapper turning its arguments into a fact.
func (r *Relation) AddRow(vals ...string) { r.Add(Fact(vals)) }

// Insert adds an interned tuple, returning whether it was new. The tuple
// is copied only when actually inserted, so callers may pass a reused
// scratch buffer. Arity must match (checked like Add).
func (r *Relation) Insert(t sym.Tuple) bool {
	if len(t) != r.Arity {
		panic(fmt.Sprintf("rel: tuple of arity %d, relation %s expects %d",
			len(t), r.Name, r.Arity))
	}
	h := tupleHash(t)
	for _, i := range r.index[h] {
		if r.tuples[i].Equal(t) {
			return false
		}
	}
	r.index[h] = append(r.index[h], int32(len(r.tuples)))
	r.tuples = append(r.tuples, t.Clone())
	return true
}

// Contains reports membership of an interned tuple.
func (r *Relation) Contains(t sym.Tuple) bool {
	for _, i := range r.index[tupleHash(t)] {
		if r.tuples[i].Equal(t) {
			return true
		}
	}
	return false
}

// Has reports membership of a boundary fact. Constant names never interned
// anywhere cannot be members, so Has does not grow the intern table.
func (r *Relation) Has(f Fact) bool {
	t := make(sym.Tuple, len(f))
	for i, c := range f {
		id, ok := sym.LookupConst(c)
		if !ok {
			return false
		}
		t[i] = id
	}
	return r.Contains(t)
}

// Len returns the number of facts.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuples returns the stored tuples in insertion order. The slice and its
// tuples are owned by the relation; callers must not mutate them.
func (r *Relation) Tuples() []sym.Tuple { return r.tuples }

// Facts returns the facts in canonical sorted order, resolved to names.
func (r *Relation) Facts() []Fact {
	out := make([]Fact, len(r.tuples))
	for i, t := range r.tuples {
		out[i] = ResolveFact(t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Clone returns a deep copy.
func (r *Relation) Clone() *Relation {
	c := &Relation{
		Name:   r.Name,
		Arity:  r.Arity,
		tuples: make([]sym.Tuple, len(r.tuples)),
		index:  make(map[uint64][]int32, len(r.index)),
	}
	for i, t := range r.tuples {
		c.tuples[i] = t.Clone()
	}
	for h, bucket := range r.index {
		c.index[h] = append([]int32(nil), bucket...)
	}
	return c
}

// Equal reports set equality of facts (names and arities must also match).
func (r *Relation) Equal(s *Relation) bool {
	if r.Name != s.Name || r.Arity != s.Arity || len(r.tuples) != len(s.tuples) {
		return false
	}
	for _, t := range r.tuples {
		if !s.Contains(t) {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every fact of r is in s.
func (r *Relation) SubsetOf(s *Relation) bool {
	if len(r.tuples) > len(s.tuples) {
		return false
	}
	for _, t := range r.tuples {
		if !s.Contains(t) {
			return false
		}
	}
	return true
}

// UnionWith adds every fact of s to r. Arities must match.
func (r *Relation) UnionWith(s *Relation) {
	for _, t := range s.tuples {
		r.Insert(t)
	}
}

// Consts appends every constant occurring in r to dst (dedup via seen).
func (r *Relation) Consts(dst []string, seen map[string]bool) []string {
	for _, t := range r.tuples {
		for _, id := range t {
			c := id.Name()
			if !seen[c] {
				seen[c] = true
				dst = append(dst, c)
			}
		}
	}
	return dst
}

// ConstIDs appends every constant ID occurring in r to dst (dedup via
// seen) — the active domain in interned form.
func (r *Relation) ConstIDs(dst []sym.ID, seen map[sym.ID]bool) []sym.ID {
	for _, t := range r.tuples {
		for _, id := range t {
			if !seen[id] {
				seen[id] = true
				dst = append(dst, id)
			}
		}
	}
	return dst
}

// Fingerprint returns a 64-bit fingerprint of the relation: name, arity
// and fact set (insertion-order independent). Equal relations share a
// fingerprint; unequal ones collide only with hash probability, so
// consumers deduplicating by fingerprint keep collision buckets.
func (r *Relation) Fingerprint() uint64 {
	h := sym.Mix(sym.HashString(r.Name) ^ uint64(r.Arity)<<32 ^ uint64(len(r.tuples)))
	for _, t := range r.tuples {
		h += sym.Mix(tupleHash(t))
	}
	return h
}

// String renders the relation as Name(arity){fact, fact, ...} with facts in
// canonical order.
func (r *Relation) String() string {
	fs := r.Facts()
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.String()
	}
	return fmt.Sprintf("%s/%d{%s}", r.Name, r.Arity, strings.Join(parts, " "))
}

// Instance is a complete-information database: an ordered vector of named
// relations (§2.1). Relation names are unique within an instance.
type Instance struct {
	rels  []*Relation
	index map[string]int
}

// NewInstance returns an empty instance.
func NewInstance() *Instance {
	return &Instance{index: make(map[string]int)}
}

// AddRelation inserts r; it panics if a relation with the same name exists.
func (i *Instance) AddRelation(r *Relation) *Relation {
	if _, ok := i.index[r.Name]; ok {
		panic("rel: duplicate relation " + r.Name)
	}
	i.index[r.Name] = len(i.rels)
	i.rels = append(i.rels, r)
	return r
}

// EnsureRelation returns the relation named name, creating it with the
// given arity if absent.
func (i *Instance) EnsureRelation(name string, arity int) *Relation {
	if r := i.Relation(name); r != nil {
		return r
	}
	return i.AddRelation(NewRelation(name, arity))
}

// Relation returns the relation named name, or nil.
func (i *Instance) Relation(name string) *Relation {
	if idx, ok := i.index[name]; ok {
		return i.rels[idx]
	}
	return nil
}

// Relations returns the relations in insertion order.
func (i *Instance) Relations() []*Relation { return i.rels }

// Clone returns a deep copy.
func (i *Instance) Clone() *Instance {
	c := NewInstance()
	for _, r := range i.rels {
		c.AddRelation(r.Clone())
	}
	return c
}

// Equal reports equality: same relation names (order-insensitive) with
// equal fact sets. Missing relations are treated as empty only if both
// sides omit them, i.e. schemas must match.
func (i *Instance) Equal(j *Instance) bool {
	if len(i.rels) != len(j.rels) {
		return false
	}
	for _, r := range i.rels {
		s := j.Relation(r.Name)
		if s == nil || !r.Equal(s) {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every relation of i is a subset of the relation
// of the same name in j. Relations absent from j count as empty.
func (i *Instance) SubsetOf(j *Instance) bool {
	for _, r := range i.rels {
		s := j.Relation(r.Name)
		if s == nil {
			if r.Len() > 0 {
				return false
			}
			continue
		}
		if !r.SubsetOf(s) {
			return false
		}
	}
	return true
}

// Size returns the total number of facts.
func (i *Instance) Size() int {
	n := 0
	for _, r := range i.rels {
		n += r.Len()
	}
	return n
}

// Consts appends every constant occurring in the instance to dst (dedup
// via seen): the active domain adom(I).
func (i *Instance) Consts(dst []string, seen map[string]bool) []string {
	for _, r := range i.rels {
		dst = r.Consts(dst, seen)
	}
	return dst
}

// ConstIDs appends every constant ID occurring in the instance to dst
// (dedup via seen).
func (i *Instance) ConstIDs(dst []sym.ID, seen map[sym.ID]bool) []sym.ID {
	for _, r := range i.rels {
		dst = r.ConstIDs(dst, seen)
	}
	return dst
}

// Fingerprint returns a 64-bit fingerprint of the whole instance,
// relation-order independent. It replaces the canonical string encoding as
// the possible-world deduplication key; equal instances share it, unequal
// ones collide only with hash probability, so world enumeration keeps
// collision buckets and confirms with Equal.
func (i *Instance) Fingerprint() uint64 {
	h := uint64(len(i.rels))
	for _, r := range i.rels {
		h += sym.Mix(r.Fingerprint())
	}
	return h
}

// Key returns a canonical string encoding of the whole instance. Engine
// paths deduplicate by Fingerprint; Key survives for debugging and
// deterministic external comparison.
func (i *Instance) Key() string {
	names := make([]string, len(i.rels))
	for k, r := range i.rels {
		names[k] = r.Name
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		r := i.Relation(n)
		b.WriteString(n)
		b.WriteByte('\x01')
		for _, f := range r.Facts() {
			b.WriteString(f.Key())
			b.WriteByte('\x02')
		}
		b.WriteByte('\x03')
	}
	return b.String()
}

// String renders each relation on its own line.
func (i *Instance) String() string {
	parts := make([]string, len(i.rels))
	for k, r := range i.rels {
		parts[k] = r.String()
	}
	return strings.Join(parts, "\n")
}
