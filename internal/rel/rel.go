// Package rel implements complete-information databases (§2.1 of the
// paper): relations of ground facts and instances, i.e. named vectors of
// relations. Relations have set semantics with a canonical sorted order for
// printing and comparison.
package rel

import (
	"fmt"
	"sort"
	"strings"
)

// Fact is a ground tuple: a fixed-arity sequence of constant names.
type Fact []string

// Key returns a canonical encoding of the fact usable as a map key. The
// separator 0x00 cannot occur in constant names produced by this library.
func (f Fact) Key() string { return strings.Join(f, "\x00") }

// Clone returns a copy of f.
func (f Fact) Clone() Fact {
	c := make(Fact, len(f))
	copy(c, f)
	return c
}

// Equal reports component-wise equality.
func (f Fact) Equal(g Fact) bool {
	if len(f) != len(g) {
		return false
	}
	for i := range f {
		if f[i] != g[i] {
			return false
		}
	}
	return true
}

// String renders the fact as (a, b, c).
func (f Fact) String() string { return "(" + strings.Join(f, ", ") + ")" }

// Compare orders facts lexicographically.
func (f Fact) Compare(g Fact) int {
	n := min(len(f), len(g))
	for i := 0; i < n; i++ {
		if f[i] < g[i] {
			return -1
		}
		if f[i] > g[i] {
			return 1
		}
	}
	switch {
	case len(f) < len(g):
		return -1
	case len(f) > len(g):
		return 1
	}
	return 0
}

// Relation is a named finite set of facts of a fixed arity.
type Relation struct {
	Name  string
	Arity int
	facts map[string]Fact
}

// NewRelation returns an empty relation with the given name and arity.
func NewRelation(name string, arity int) *Relation {
	return &Relation{Name: name, Arity: arity, facts: make(map[string]Fact)}
}

// Add inserts the fact; it panics on arity mismatch (a programming error,
// not a data error: arities are fixed parameters in the data-complexity
// setting).
func (r *Relation) Add(f Fact) {
	if len(f) != r.Arity {
		panic(fmt.Sprintf("rel: fact %v has arity %d, relation %s expects %d",
			f, len(f), r.Name, r.Arity))
	}
	r.facts[f.Key()] = f.Clone()
}

// AddRow is a convenience wrapper turning its arguments into a fact.
func (r *Relation) AddRow(vals ...string) { r.Add(Fact(vals)) }

// Has reports membership.
func (r *Relation) Has(f Fact) bool {
	_, ok := r.facts[f.Key()]
	return ok
}

// Len returns the number of facts.
func (r *Relation) Len() int { return len(r.facts) }

// Facts returns the facts in canonical sorted order.
func (r *Relation) Facts() []Fact {
	out := make([]Fact, 0, len(r.facts))
	for _, f := range r.facts {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Clone returns a deep copy.
func (r *Relation) Clone() *Relation {
	c := NewRelation(r.Name, r.Arity)
	for k, f := range r.facts {
		c.facts[k] = f.Clone()
	}
	return c
}

// Equal reports set equality of facts (names and arities must also match).
func (r *Relation) Equal(s *Relation) bool {
	if r.Name != s.Name || r.Arity != s.Arity || len(r.facts) != len(s.facts) {
		return false
	}
	for k := range r.facts {
		if _, ok := s.facts[k]; !ok {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every fact of r is in s.
func (r *Relation) SubsetOf(s *Relation) bool {
	if len(r.facts) > len(s.facts) {
		return false
	}
	for k := range r.facts {
		if _, ok := s.facts[k]; !ok {
			return false
		}
	}
	return true
}

// UnionWith adds every fact of s to r. Arities must match.
func (r *Relation) UnionWith(s *Relation) {
	for _, f := range s.facts {
		r.Add(f)
	}
}

// Consts appends every constant occurring in r to dst (dedup via seen).
func (r *Relation) Consts(dst []string, seen map[string]bool) []string {
	for _, f := range r.facts {
		for _, c := range f {
			if !seen[c] {
				seen[c] = true
				dst = append(dst, c)
			}
		}
	}
	return dst
}

// String renders the relation as Name(arity){fact, fact, ...} with facts in
// canonical order.
func (r *Relation) String() string {
	fs := r.Facts()
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.String()
	}
	return fmt.Sprintf("%s/%d{%s}", r.Name, r.Arity, strings.Join(parts, " "))
}

// Instance is a complete-information database: an ordered vector of named
// relations (§2.1). Relation names are unique within an instance.
type Instance struct {
	rels  []*Relation
	index map[string]int
}

// NewInstance returns an empty instance.
func NewInstance() *Instance {
	return &Instance{index: make(map[string]int)}
}

// AddRelation inserts r; it panics if a relation with the same name exists.
func (i *Instance) AddRelation(r *Relation) *Relation {
	if _, ok := i.index[r.Name]; ok {
		panic("rel: duplicate relation " + r.Name)
	}
	i.index[r.Name] = len(i.rels)
	i.rels = append(i.rels, r)
	return r
}

// EnsureRelation returns the relation named name, creating it with the
// given arity if absent.
func (i *Instance) EnsureRelation(name string, arity int) *Relation {
	if r := i.Relation(name); r != nil {
		return r
	}
	return i.AddRelation(NewRelation(name, arity))
}

// Relation returns the relation named name, or nil.
func (i *Instance) Relation(name string) *Relation {
	if idx, ok := i.index[name]; ok {
		return i.rels[idx]
	}
	return nil
}

// Relations returns the relations in insertion order.
func (i *Instance) Relations() []*Relation { return i.rels }

// Clone returns a deep copy.
func (i *Instance) Clone() *Instance {
	c := NewInstance()
	for _, r := range i.rels {
		c.AddRelation(r.Clone())
	}
	return c
}

// Equal reports equality: same relation names (order-insensitive) with
// equal fact sets. Missing relations are treated as empty only if both
// sides omit them, i.e. schemas must match.
func (i *Instance) Equal(j *Instance) bool {
	if len(i.rels) != len(j.rels) {
		return false
	}
	for _, r := range i.rels {
		s := j.Relation(r.Name)
		if s == nil || !r.Equal(s) {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every relation of i is a subset of the relation
// of the same name in j. Relations absent from j count as empty.
func (i *Instance) SubsetOf(j *Instance) bool {
	for _, r := range i.rels {
		s := j.Relation(r.Name)
		if s == nil {
			if r.Len() > 0 {
				return false
			}
			continue
		}
		if !r.SubsetOf(s) {
			return false
		}
	}
	return true
}

// Size returns the total number of facts.
func (i *Instance) Size() int {
	n := 0
	for _, r := range i.rels {
		n += r.Len()
	}
	return n
}

// Consts appends every constant occurring in the instance to dst (dedup
// via seen): the active domain adom(I).
func (i *Instance) Consts(dst []string, seen map[string]bool) []string {
	for _, r := range i.rels {
		dst = r.Consts(dst, seen)
	}
	return dst
}

// Key returns a canonical encoding of the whole instance, usable to
// deduplicate possible worlds.
func (i *Instance) Key() string {
	names := make([]string, len(i.rels))
	for k, r := range i.rels {
		names[k] = r.Name
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		r := i.Relation(n)
		b.WriteString(n)
		b.WriteByte('\x01')
		for _, f := range r.Facts() {
			b.WriteString(f.Key())
			b.WriteByte('\x02')
		}
		b.WriteByte('\x03')
	}
	return b.String()
}

// String renders each relation on its own line.
func (i *Instance) String() string {
	parts := make([]string, len(i.rels))
	for k, r := range i.rels {
		parts[k] = r.String()
	}
	return strings.Join(parts, "\n")
}
