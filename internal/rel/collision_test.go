package rel

import (
	"fmt"
	"testing"

	"pw/internal/sym"
)

// TestCollisionFallback forces every tuple into one fingerprint bucket and
// checks that set semantics survive on exact comparison alone: the
// fingerprint is an accelerator, never an identity.
func TestCollisionFallback(t *testing.T) {
	orig := tupleHash
	tupleHash = func([]sym.ID) uint64 { return 0xdead }
	defer func() { tupleHash = orig }()

	r := NewRelation("C", 2)
	const n = 50
	for i := 0; i < n; i++ {
		r.AddRow(fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i))
		r.AddRow(fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)) // duplicate
	}
	if r.Len() != n {
		t.Fatalf("Len = %d, want %d (duplicates must dedup under total collision)", r.Len(), n)
	}
	for i := 0; i < n; i++ {
		if !r.Has(Fact{fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)}) {
			t.Fatalf("fact %d lost", i)
		}
	}
	if r.Has(Fact{"a0", "b1"}) {
		t.Error("colliding non-member reported present")
	}

	s := r.Clone()
	if !r.Equal(s) || !r.SubsetOf(s) {
		t.Error("Equal/SubsetOf broken under total collision")
	}
	s.AddRow("extra", "row")
	if r.Equal(s) || s.SubsetOf(r) {
		t.Error("strict superset not detected under total collision")
	}
	if !r.SubsetOf(s) {
		t.Error("subset not detected under total collision")
	}
}

// TestFingerprintInsertionOrderIndependent: the relation fingerprint is a
// set fingerprint, stable under permuted insertion.
func TestFingerprintInsertionOrderIndependent(t *testing.T) {
	a := NewRelation("R", 1)
	b := NewRelation("R", 1)
	for i := 0; i < 20; i++ {
		a.AddRow(fmt.Sprintf("x%d", i))
	}
	for i := 19; i >= 0; i-- {
		b.AddRow(fmt.Sprintf("x%d", i))
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprint depends on insertion order")
	}
	ia, ib := NewInstance(), NewInstance()
	ia.AddRelation(a)
	ib.AddRelation(b)
	if ia.Fingerprint() != ib.Fingerprint() {
		t.Error("instance fingerprint depends on insertion order")
	}
}

// TestFingerprintSeparatesNearMisses: distinct small edits move the
// fingerprint (not a collision guarantee — just a sanity check that the
// mixing actually bites on the shapes the engine produces).
func TestFingerprintSeparatesNearMisses(t *testing.T) {
	base := NewRelation("R", 2)
	base.AddRow("1", "2")
	base.AddRow("3", "4")
	edited := NewRelation("R", 2)
	edited.AddRow("1", "2")
	edited.AddRow("4", "3")
	if base.Fingerprint() == edited.Fingerprint() {
		t.Error("component swap not separated")
	}
	renamed := NewRelation("S", 2)
	renamed.AddRow("1", "2")
	renamed.AddRow("3", "4")
	if base.Fingerprint() == renamed.Fingerprint() {
		t.Error("relation name not part of the fingerprint")
	}
}
