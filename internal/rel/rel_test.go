package rel

import (
	"testing"
	"testing/quick"
)

func TestFactBasics(t *testing.T) {
	f := Fact{"a", "b"}
	if f.Key() != "a\x00b" {
		t.Errorf("Key = %q", f.Key())
	}
	g := f.Clone()
	g[0] = "z"
	if f[0] != "a" {
		t.Error("Clone aliases")
	}
	if !f.Equal(Fact{"a", "b"}) || f.Equal(Fact{"a"}) || f.Equal(Fact{"a", "c"}) {
		t.Error("Equal broken")
	}
	if f.String() != "(a, b)" {
		t.Errorf("String = %q", f.String())
	}
}

func TestFactCompare(t *testing.T) {
	cases := []struct {
		a, b Fact
		want int
	}{
		{Fact{"a"}, Fact{"b"}, -1},
		{Fact{"b"}, Fact{"a"}, 1},
		{Fact{"a"}, Fact{"a"}, 0},
		{Fact{"a"}, Fact{"a", "a"}, -1},
		{Fact{"a", "b"}, Fact{"a"}, 1},
	}
	for _, tc := range cases {
		if got := tc.a.Compare(tc.b); got != tc.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestRelationSetSemantics(t *testing.T) {
	r := NewRelation("R", 2)
	r.AddRow("1", "2")
	r.AddRow("1", "2")
	r.AddRow("3", "4")
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2 (set semantics)", r.Len())
	}
	if !r.Has(Fact{"1", "2"}) || r.Has(Fact{"2", "1"}) {
		t.Error("Has broken")
	}
}

func TestRelationArityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch must panic")
		}
	}()
	NewRelation("R", 2).AddRow("only-one")
}

func TestRelationFactsSorted(t *testing.T) {
	r := NewRelation("R", 1)
	r.AddRow("c")
	r.AddRow("a")
	r.AddRow("b")
	fs := r.Facts()
	if fs[0][0] != "a" || fs[1][0] != "b" || fs[2][0] != "c" {
		t.Errorf("Facts not sorted: %v", fs)
	}
}

func TestRelationEqualSubset(t *testing.T) {
	a := NewRelation("R", 1)
	a.AddRow("1")
	b := NewRelation("R", 1)
	b.AddRow("1")
	b.AddRow("2")
	if a.Equal(b) {
		t.Error("different sets reported equal")
	}
	if !a.SubsetOf(b) {
		t.Error("subset not detected")
	}
	if b.SubsetOf(a) {
		t.Error("superset reported as subset")
	}
	a.AddRow("2")
	if !a.Equal(b) {
		t.Error("equal sets reported different")
	}
}

func TestRelationCloneUnion(t *testing.T) {
	a := NewRelation("R", 1)
	a.AddRow("1")
	c := a.Clone()
	c.AddRow("2")
	if a.Len() != 1 {
		t.Error("Clone aliases")
	}
	a.UnionWith(c)
	if a.Len() != 2 {
		t.Error("UnionWith broken")
	}
}

func TestInstanceBasics(t *testing.T) {
	i := NewInstance()
	r := i.EnsureRelation("R", 2)
	r.AddRow("1", "2")
	i.EnsureRelation("S", 1).AddRow("9")
	if i.Relation("R") == nil || i.Relation("missing") != nil {
		t.Error("Relation lookup broken")
	}
	if i.Size() != 2 {
		t.Errorf("Size = %d", i.Size())
	}
	j := i.Clone()
	j.Relation("R").AddRow("7", "8")
	if i.Relation("R").Len() != 1 {
		t.Error("Clone aliases")
	}
}

func TestInstanceEqualIsSchemaSensitive(t *testing.T) {
	i := NewInstance()
	i.EnsureRelation("R", 1)
	j := NewInstance()
	j.EnsureRelation("S", 1)
	if i.Equal(j) {
		t.Error("different schemas must not be equal")
	}
	k := NewInstance()
	k.EnsureRelation("R", 1)
	if !i.Equal(k) {
		t.Error("empty same-schema instances must be equal")
	}
}

func TestInstanceSubsetOf(t *testing.T) {
	i := NewInstance()
	i.EnsureRelation("R", 1).AddRow("1")
	j := NewInstance()
	j.EnsureRelation("R", 1).AddRow("1")
	j.Relation("R").AddRow("2")
	if !i.SubsetOf(j) || j.SubsetOf(i) {
		t.Error("SubsetOf broken")
	}
	// A relation missing from the superset counts as empty.
	i.EnsureRelation("S", 1).AddRow("5")
	if i.SubsetOf(j) {
		t.Error("missing relation with facts must break subset")
	}
}

func TestInstanceKeyCanonical(t *testing.T) {
	build := func(order []string) *Instance {
		i := NewInstance()
		for _, n := range order {
			i.EnsureRelation(n, 1)
		}
		i.Relation("R").AddRow("1")
		i.Relation("S").AddRow("2")
		return i
	}
	a := build([]string{"R", "S"})
	b := build([]string{"S", "R"})
	if a.Key() != b.Key() {
		t.Error("Key must not depend on relation insertion order")
	}
}

func TestInstanceKeyInjective(t *testing.T) {
	f := func(xs []string) bool {
		a := NewInstance()
		ra := a.EnsureRelation("R", 1)
		for _, x := range xs {
			if x == "" {
				continue
			}
			ra.AddRow(x)
		}
		b := NewInstance()
		rb := b.EnsureRelation("R", 1)
		for _, x := range xs {
			if x == "" {
				continue
			}
			rb.AddRow(x)
		}
		return a.Key() == b.Key() && a.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConstsCollection(t *testing.T) {
	i := NewInstance()
	i.EnsureRelation("R", 2).AddRow("a", "b")
	i.EnsureRelation("S", 1).AddRow("a")
	cs := i.Consts(nil, map[string]bool{})
	if len(cs) != 2 {
		t.Errorf("Consts = %v, want a,b deduplicated", cs)
	}
}

func TestDuplicateRelationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate relation must panic")
		}
	}()
	i := NewInstance()
	i.AddRelation(NewRelation("R", 1))
	i.AddRelation(NewRelation("R", 1))
}
