// Package graph provides the undirected-graph substrate of the paper's
// 3-colorability reductions (Theorems 3.1(2,3,4) and 3.2(4)): a graph type
// with an arbitrary-but-fixed edge orientation (the reductions list each
// edge once, oriented), a brute-force 3-coloring decider as ground truth,
// and random generators for benchmark workloads.
package graph

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Edge is an oriented listing of an undirected edge: the reduction
// constructions need each edge exactly once with a fixed orientation.
type Edge struct {
	A, B int
}

// G is an undirected graph over vertices 0..N-1 whose edges carry an
// arbitrary fixed orientation.
type G struct {
	N     int
	Edges []Edge
}

// New returns an empty graph on n vertices.
func New(n int) *G { return &G{N: n} }

// AddEdge inserts the (oriented) edge a→b; self-loops are rejected because
// the reductions assume loop-freeness (a self-loop is trivially
// non-colorable anyway).
func (g *G) AddEdge(a, b int) error {
	if a == b {
		return fmt.Errorf("graph: self-loop at %d not allowed", a)
	}
	if a < 0 || b < 0 || a >= g.N || b >= g.N {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", a, b, g.N)
	}
	g.Edges = append(g.Edges, Edge{A: a, B: b})
	return nil
}

// MustEdge is AddEdge for static test/benchmark graphs.
func (g *G) MustEdge(a, b int) *G {
	if err := g.AddEdge(a, b); err != nil {
		panic(err)
	}
	return g
}

// Colorable3 decides 3-colorability by backtracking over vertices in
// degree order — exponential worst case; ground truth for the reductions.
func (g *G) Colorable3() bool {
	_, ok := g.Coloring3()
	return ok
}

// Coloring3 returns a valid 3-coloring (colors 1..3 per the paper's
// convention) if one exists.
func (g *G) Coloring3() ([]int, bool) {
	adj := make([][]int, g.N)
	for _, e := range g.Edges {
		adj[e.A] = append(adj[e.A], e.B)
		adj[e.B] = append(adj[e.B], e.A)
	}
	order := make([]int, g.N)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return len(adj[order[i]]) > len(adj[order[j]]) })
	color := make([]int, g.N)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == g.N {
			return true
		}
		u := order[i]
		for c := 1; c <= 3; c++ {
			ok := true
			for _, w := range adj[u] {
				if color[w] == c {
					ok = false
					break
				}
			}
			if ok {
				color[u] = c
				if rec(i + 1) {
					return true
				}
				color[u] = 0
			}
		}
		return false
	}
	if !rec(0) {
		return nil, false
	}
	return color, true
}

// ValidColoring reports whether color (1-based colors, index = vertex) is
// a proper coloring.
func (g *G) ValidColoring(color []int) bool {
	if len(color) != g.N {
		return false
	}
	for _, e := range g.Edges {
		if color[e.A] == color[e.B] {
			return false
		}
	}
	return true
}

// Paper returns the example graph of Fig. 4(a): vertices 1..5 (0-indexed
// here as 0..4) with edges 1→2, 2→3, 3→4, 4→1, 3→5.
func Paper() *G {
	g := New(5)
	g.MustEdge(0, 1)
	g.MustEdge(1, 2)
	g.MustEdge(2, 3)
	g.MustEdge(3, 0)
	g.MustEdge(2, 4)
	return g
}

// Random returns a random loop-free graph on n vertices where each of the
// n(n-1)/2 candidate edges is present with probability p.
func Random(rng *rand.Rand, n int, p float64) *G {
	g := New(n)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if rng.Float64() < p {
				g.MustEdge(a, b)
			}
		}
	}
	return g
}

// Cycle returns the n-cycle (3-colorable always; 2-colorable iff n even).
func Cycle(n int) *G {
	g := New(n)
	for i := 0; i < n; i++ {
		g.MustEdge(i, (i+1)%n)
	}
	return g
}

// Complete returns K_n (3-colorable iff n ≤ 3).
func Complete(n int) *G {
	g := New(n)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			g.MustEdge(a, b)
		}
	}
	return g
}

// String renders the graph compactly.
func (g *G) String() string {
	parts := make([]string, len(g.Edges))
	for i, e := range g.Edges {
		parts[i] = fmt.Sprintf("%d-%d", e.A, e.B)
	}
	return fmt.Sprintf("G(n=%d; %s)", g.N, strings.Join(parts, " "))
}
