package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKnownColorability(t *testing.T) {
	cases := []struct {
		g    *G
		want bool
	}{
		{Complete(3), true},
		{Complete(4), false},
		{Complete(5), false},
		{Cycle(4), true},
		{Cycle(5), true},
		{Cycle(7), true},
		{New(3), true}, // no edges
		{Paper(), true},
	}
	for i, tc := range cases {
		if got := tc.g.Colorable3(); got != tc.want {
			t.Errorf("case %d (%v): colorable = %v, want %v", i, tc.g, got, tc.want)
		}
	}
}

func TestColoringIsValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Random(rng, 2+rng.Intn(8), 0.4)
		color, ok := g.Coloring3()
		if !ok {
			return true // validity of "no" checked by brute force below
		}
		for _, c := range color {
			if c < 1 || c > 3 {
				return false
			}
		}
		return g.ValidColoring(color)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestColorable3MatchesExhaustive validates the backtracking decider
// against full enumeration on small graphs.
func TestColorable3MatchesExhaustive(t *testing.T) {
	exhaustive := func(g *G) bool {
		color := make([]int, g.N)
		var rec func(i int) bool
		rec = func(i int) bool {
			if i == g.N {
				return g.ValidColoring(color)
			}
			for c := 1; c <= 3; c++ {
				color[i] = c
				if rec(i + 1) {
					return true
				}
			}
			return false
		}
		return rec(0)
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		g := Random(rng, 1+rng.Intn(7), 0.5)
		if g.Colorable3() != exhaustive(g) {
			t.Fatalf("disagreement on %v", g)
		}
	}
}

func TestSelfLoopRejected(t *testing.T) {
	g := New(2)
	if err := g.AddEdge(0, 0); err == nil {
		t.Error("self-loop must be rejected")
	}
	if err := g.AddEdge(0, 5); err == nil {
		t.Error("out-of-range edge must be rejected")
	}
}

func TestPaperGraphShape(t *testing.T) {
	g := Paper()
	if g.N != 5 || len(g.Edges) != 5 {
		t.Errorf("paper graph: n=%d m=%d", g.N, len(g.Edges))
	}
	if !g.Colorable3() {
		t.Error("the paper's Fig. 4(a) graph is 3-colorable")
	}
}

func TestValidColoringRejectsBadInput(t *testing.T) {
	g := Cycle(3)
	if g.ValidColoring([]int{1, 2}) {
		t.Error("wrong length must be invalid")
	}
	if g.ValidColoring([]int{1, 1, 2}) {
		t.Error("monochrome edge must be invalid")
	}
	if !g.ValidColoring([]int{1, 2, 3}) {
		t.Error("proper coloring rejected")
	}
}
