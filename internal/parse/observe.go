// Observed parse entry points: identical parsers with a per-request
// cost-accounting sink recording the bytes consumed (the parse-side
// contribution to a request's cost profile — parse time is linear in
// it). The wrappers count at the reader, so every dispatch path of the
// underlying parser is covered without threading the sink through the
// grammar.
package parse

import (
	"io"

	"pw/internal/obs"
	"pw/internal/rel"
	"pw/internal/wsd"
)

// countingReader records every byte read into the cost sink.
type countingReader struct {
	r io.Reader
	c *obs.Cost
}

func (cr countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	if n > 0 {
		cr.c.Add(obs.ParseBytes, int64(n))
	}
	return n, err
}

// observed wraps r so reads record into c; a nil sink is the identity.
func observed(r io.Reader, c *obs.Cost) io.Reader {
	if c == nil {
		return r
	}
	return countingReader{r: r, c: c}
}

// ParseSourceObserved is ParseSource with input bytes recorded into c
// (nil c: exactly ParseSource).
func ParseSourceObserved(r io.Reader, c *obs.Cost) (*Source, error) {
	return ParseSource(observed(r, c))
}

// ParseInstanceObserved is ParseInstance with input bytes recorded into
// c (nil c: exactly ParseInstance).
func ParseInstanceObserved(r io.Reader, c *obs.Cost) (*rel.Instance, error) {
	return ParseInstance(observed(r, c))
}

// ParseUpdateObserved is ParseUpdate with input bytes recorded into c
// (nil c: exactly ParseUpdate).
func ParseUpdateObserved(r io.Reader, c *obs.Cost) (*wsd.Update, error) {
	return ParseUpdate(observed(r, c))
}
