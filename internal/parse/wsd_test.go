package parse

import (
	"strings"
	"testing"
)

const sampleWSD = `# two uncertain assignments, one certain department
@wsd
  relation: Emp(2)
  relation: Dept(2)
  component:
    alt: Emp(carol sales), Emp(dana eng)
    alt: Emp(carol eng), Emp(dana sales)
  component:
    alt: Dept(eng 1)
    alt: Dept(eng 2)
  component:
    alt: Dept(sales 1)
`

func TestParseWSD(t *testing.T) {
	w, err := ParseWSD(strings.NewReader(sampleWSD))
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Count().Int64(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	if got := len(w.Schema()); got != 2 {
		t.Fatalf("schema has %d relations, want 2", got)
	}
}

func TestPrintWSDRoundTrip(t *testing.T) {
	w, err := ParseWSD(strings.NewReader(sampleWSD))
	if err != nil {
		t.Fatal(err)
	}
	var printed strings.Builder
	if err := PrintWSD(&printed, w); err != nil {
		t.Fatal(err)
	}
	w2, err := ParseWSD(strings.NewReader(printed.String()))
	if err != nil {
		t.Fatalf("printed form does not re-parse: %v\n%s", err, printed.String())
	}
	var printed2 strings.Builder
	if err := PrintWSD(&printed2, w2); err != nil {
		t.Fatal(err)
	}
	if printed.String() != printed2.String() {
		t.Fatalf("print is not a fixed point:\nfirst:\n%s\nsecond:\n%s", printed.String(), printed2.String())
	}
}

func TestParseWSDErrors(t *testing.T) {
	cases := []struct{ name, input string }{
		{"no_block", "component:\n"},
		{"alt_outside", "@wsd\n  alt: R(a)\n"},
		{"dup_wsd", "@wsd\n@wsd\n"},
		{"dup_relation", "@wsd\n  relation: R(1)\n  relation: R(2)\n"},
		{"late_relation", "@wsd\n  component:\n  relation: R(1)\n"},
		{"unknown_rel", "@wsd\n  relation: R(1)\n  component:\n    alt: S(a)\n"},
		{"arity", "@wsd\n  relation: R(2)\n  component:\n    alt: R(a)\n"},
		{"var_fact", "@wsd\n  relation: R(1)\n  component:\n    alt: R(?x)\n"},
		{"bad_fact", "@wsd\n  relation: R(1)\n  component:\n    alt: R a\n"},
		{"table_mix", "@wsd\n@table T(1)\n  row: a\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseWSD(strings.NewReader(tc.input)); err == nil {
				t.Errorf("accepted %q", tc.input)
			}
		})
	}
}

func TestParseWSDEmptyWorldSet(t *testing.T) {
	w, err := ParseWSD(strings.NewReader("@wsd\n  relation: R(1)\n  component:\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !w.Empty() || w.Count().Sign() != 0 {
		t.Fatal("altless component must denote the empty world set")
	}
	// And the empty world set round-trips.
	var printed strings.Builder
	if err := PrintWSD(&printed, w); err != nil {
		t.Fatal(err)
	}
	w2, err := ParseWSD(strings.NewReader(printed.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !w2.Empty() {
		t.Fatal("empty world set did not survive the round trip")
	}
}

func TestParseSourceDispatch(t *testing.T) {
	src, err := ParseSource(strings.NewReader(sampleWSD))
	if err != nil {
		t.Fatal(err)
	}
	if src.WSD == nil || src.DB != nil {
		t.Fatal("@wsd input did not dispatch to the decomposition parser")
	}
	src, err = ParseSource(strings.NewReader("# c\n@table T(1)\n  row: ?x\n"))
	if err != nil {
		t.Fatal(err)
	}
	if src.DB == nil || src.WSD != nil {
		t.Fatal("@table input did not dispatch to the database parser")
	}
	if _, err := ParseSource(strings.NewReader("nonsense\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}
