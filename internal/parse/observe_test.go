package parse

import (
	"strings"
	"testing"

	"pw/internal/obs"
)

const obsSrc = "@table T(2)\n  row: a b\n"

// Every observed entry point must record exactly the bytes consumed and
// behave identically to its unobserved twin with a nil sink.
func TestObservedParsersRecordBytes(t *testing.T) {
	c := obs.NewCost()
	src, err := ParseSourceObserved(strings.NewReader(obsSrc), c)
	if err != nil {
		t.Fatal(err)
	}
	if src.DB == nil {
		t.Fatal("observed parse lost the database")
	}
	if got := c.Get(obs.ParseBytes); got != int64(len(obsSrc)) {
		t.Errorf("parse_bytes = %d, want %d", got, len(obsSrc))
	}

	// Nil sink: the wrapper is exactly the plain parser, no counting.
	if _, err := ParseSourceObserved(strings.NewReader(obsSrc), nil); err != nil {
		t.Fatal(err)
	}

	inst := "@relation R(1)\n  fact: x\n"
	c2 := obs.NewCost()
	if _, err := ParseInstanceObserved(strings.NewReader(inst), c2); err != nil {
		t.Fatal(err)
	}
	if got := c2.Get(obs.ParseBytes); got != int64(len(inst)) {
		t.Errorf("instance parse_bytes = %d, want %d", got, len(inst))
	}
	if _, err := ParseInstanceObserved(strings.NewReader(inst), nil); err != nil {
		t.Fatal(err)
	}

	upd := "@update\n  insert: R(x)\n"
	c3 := obs.NewCost()
	if _, err := ParseUpdateObserved(strings.NewReader(upd), c3); err != nil {
		t.Fatal(err)
	}
	if got := c3.Get(obs.ParseBytes); got != int64(len(upd)) {
		t.Errorf("update parse_bytes = %d, want %d", got, len(upd))
	}
	if _, err := ParseUpdateObserved(strings.NewReader(upd), nil); err != nil {
		t.Fatal(err)
	}
}

// Errors pass through the counting reader unchanged.
func TestObservedParserPropagatesErrors(t *testing.T) {
	c := obs.NewCost()
	if _, err := ParseUpdateObserved(strings.NewReader("@nonsense\n"), c); err == nil {
		t.Fatal("observed parse of garbage succeeded")
	}
}
