// Package parse implements the .pw text format for conditioned-table
// databases and instances, so the cmd tools can read and write problem
// instances. The grammar (one directive per line, '#' comments):
//
//	@table NAME(ARITY)
//	  global: ATOM, ATOM, ...
//	  row: VAL VAL ... [| ATOM, ATOM, ...]
//
//	@relation NAME(ARITY)
//	  fact: CONST CONST ...
//
// Values are bare constants or ?variables; atoms are "VAL = VAL" or
// "VAL != VAL". Printing is Table.String / Instance-compatible; ParseDatabase
// and ParseInstance invert it.
package parse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"pw/internal/cond"
	"pw/internal/rel"
	"pw/internal/table"
	"pw/internal/value"
)

// ParseDatabase reads a .pw database (a sequence of @table blocks).
func ParseDatabase(r io.Reader) (*table.Database, error) {
	d := table.NewDatabase()
	var cur *table.Table
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "@table "):
			name, arity, err := parseHeader(strings.TrimPrefix(line, "@table "))
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			// Duplicate names are a data error here, not the programming
			// error AddTable panics on.
			if d.Table(name) != nil {
				return nil, fmt.Errorf("line %d: duplicate table %s", lineNo, name)
			}
			cur = table.New(name, arity)
			d.AddTable(cur)
		case strings.HasPrefix(line, "global:"):
			if cur == nil {
				return nil, fmt.Errorf("line %d: global before @table", lineNo)
			}
			c, err := ParseConjunction(strings.TrimPrefix(line, "global:"))
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			cur.Global = append(cur.Global, c...)
		case strings.HasPrefix(line, "row:"):
			if cur == nil {
				return nil, fmt.Errorf("line %d: row before @table", lineNo)
			}
			row, err := parseRow(strings.TrimPrefix(line, "row:"), cur.Arity)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			cur.Add(row)
		default:
			return nil, fmt.Errorf("line %d: unrecognized directive %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}

// ParseInstance reads a .pw instance (a sequence of @relation blocks).
func ParseInstance(r io.Reader) (*rel.Instance, error) {
	inst := rel.NewInstance()
	var cur *rel.Relation
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "@relation "):
			name, arity, err := parseHeader(strings.TrimPrefix(line, "@relation "))
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			// Duplicate names are a data error here, not the programming
			// error AddRelation panics on.
			if inst.Relation(name) != nil {
				return nil, fmt.Errorf("line %d: duplicate relation %s", lineNo, name)
			}
			cur = rel.NewRelation(name, arity)
			inst.AddRelation(cur)
		case strings.HasPrefix(line, "fact:"):
			if cur == nil {
				return nil, fmt.Errorf("line %d: fact before @relation", lineNo)
			}
			fields := strings.Fields(strings.TrimPrefix(line, "fact:"))
			if len(fields) != cur.Arity {
				return nil, fmt.Errorf("line %d: fact has %d fields, relation %s expects %d",
					lineNo, len(fields), cur.Name, cur.Arity)
			}
			for _, f := range fields {
				if strings.HasPrefix(f, "?") {
					return nil, fmt.Errorf("line %d: facts must be ground, got %s", lineNo, f)
				}
			}
			cur.Add(rel.Fact(fields))
		default:
			return nil, fmt.Errorf("line %d: unrecognized directive %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return inst, nil
}

func parseHeader(s string) (string, int, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return "", 0, fmt.Errorf("want NAME(ARITY), got %q", s)
	}
	name := strings.TrimSpace(s[:open])
	if name == "" {
		return "", 0, fmt.Errorf("empty name in %q", s)
	}
	arity, err := strconv.Atoi(strings.TrimSpace(s[open+1 : len(s)-1]))
	if err != nil || arity < 0 {
		return "", 0, fmt.Errorf("bad arity in %q", s)
	}
	return name, arity, nil
}

func parseRow(s string, arity int) (table.Row, error) {
	valPart, condPart, hasCond := strings.Cut(s, "|")
	fields := strings.Fields(valPart)
	if len(fields) != arity {
		return table.Row{}, fmt.Errorf("row has %d values, want %d", len(fields), arity)
	}
	vals := make(value.Tuple, arity)
	for i, f := range fields {
		vals[i] = ParseValue(f)
	}
	row := table.Row{Values: vals}
	if hasCond {
		c, err := ParseConjunction(condPart)
		if err != nil {
			return table.Row{}, err
		}
		row.Cond = c
	}
	return row, nil
}

// ParseValue parses a bare constant or ?variable.
func ParseValue(s string) value.Value {
	if strings.HasPrefix(s, "?") {
		return value.Var(s[1:])
	}
	return value.Const(s)
}

// ParseConjunction parses a comma-separated conjunction of atoms; the
// literal "true" (or empty input) yields the empty conjunction.
func ParseConjunction(s string) (cond.Conjunction, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "true" {
		return nil, nil
	}
	var out cond.Conjunction
	for _, part := range strings.Split(s, ",") {
		a, err := ParseAtom(part)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// ParseAtom parses "VAL = VAL" or "VAL != VAL".
func ParseAtom(s string) (cond.Atom, error) {
	s = strings.TrimSpace(s)
	op := cond.Eq
	var l, r string
	if i := strings.Index(s, "!="); i >= 0 {
		op = cond.Neq
		l, r = s[:i], s[i+2:]
	} else if i := strings.Index(s, "="); i >= 0 {
		l, r = s[:i], s[i+1:]
	} else {
		return cond.Atom{}, fmt.Errorf("atom %q lacks = or !=", s)
	}
	lf, rf := strings.Fields(l), strings.Fields(r)
	if len(lf) != 1 || len(rf) != 1 {
		return cond.Atom{}, fmt.Errorf("atom %q malformed", s)
	}
	return cond.Atom{Op: op, L: ParseValue(lf[0]), R: ParseValue(rf[0])}, nil
}

// PrintDatabase renders d in .pw syntax (parsable by ParseDatabase).
func PrintDatabase(w io.Writer, d *table.Database) error {
	for i, t := range d.Tables() {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w, t.String()); err != nil {
			return err
		}
	}
	return nil
}

// PrintInstance renders i in .pw syntax (parsable by ParseInstance).
func PrintInstance(w io.Writer, inst *rel.Instance) error {
	for i, r := range inst.Relations() {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "@relation %s(%d)\n", r.Name, r.Arity); err != nil {
			return err
		}
		for _, f := range r.Facts() {
			if _, err := fmt.Fprintf(w, "  fact: %s\n", strings.Join(f, " ")); err != nil {
				return err
			}
		}
	}
	return nil
}
