// .pw syntax for update programs. An @update block is an ordered list
// of operations applied to every world of a decomposition:
//
//	@update
//	  insert: Emp(carol sales)
//	  delete: Emp(carol *)
//	  update: Emp(* sales) set 2 = eng
//	  assume: Dept(eng 1)
//	  assume-not: Dept(eng 2)
//
// insert/assume/assume-not take one ground fact; delete and update take
// a pattern whose slots are constants or the wildcard '*'. An update
// op's set clause lists 1-based SLOT = CONST assignments, comma
// separated. ParseUpdate inverts wsd.Update.String, so parse→print is a
// fixed point.
package parse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"pw/internal/wsd"
)

// updateKeywords maps op-line prefixes to kinds; checked in this order,
// so the longer "assume-not:" wins over "assume:".
var updateKeywords = []struct {
	prefix string
	kind   wsd.UpdateKind
}{
	{"insert:", wsd.OpInsert},
	{"delete:", wsd.OpDelete},
	{"update:", wsd.OpSet},
	{"assume-not:", wsd.OpAssumeNot},
	{"assume:", wsd.OpAssume},
}

// ParseUpdate reads a .pw update program (one @update block).
func ParseUpdate(r io.Reader) (*wsd.Update, error) {
	sc := bufio.NewScanner(r)
	lineNo := 0
	seen := false
	u := &wsd.Update{}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "@update" {
			if seen {
				return nil, fmt.Errorf("line %d: duplicate @update block", lineNo)
			}
			seen = true
			continue
		}
		if !seen {
			return nil, fmt.Errorf("line %d: operation before @update", lineNo)
		}
		op, err := parseUpdateOp(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		u.Ops = append(u.Ops, *op)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !seen {
		return nil, fmt.Errorf("missing @update block")
	}
	if len(u.Ops) == 0 {
		return nil, fmt.Errorf("@update block has no operations")
	}
	return u, nil
}

// parseUpdateOp parses one operation line: KEYWORD: Rel(arg arg ...)
// with an optional "set N = c, ..." tail on update ops.
func parseUpdateOp(line string) (*wsd.UpdateOp, error) {
	var body string
	op := &wsd.UpdateOp{}
	found := false
	for _, kw := range updateKeywords {
		if strings.HasPrefix(line, kw.prefix) {
			op.Kind, body, found = kw.kind, strings.TrimSpace(strings.TrimPrefix(line, kw.prefix)), true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("unrecognized update operation %q (want insert/delete/update/assume/assume-not)", line)
	}
	open := strings.IndexByte(body, '(')
	close := strings.IndexByte(body, ')')
	if open <= 0 || close < open {
		return nil, fmt.Errorf("operation %q: want Rel(arg arg ...)", body)
	}
	op.Rel = strings.TrimSpace(body[:open])
	if err := checkWSDConst(op.Rel); err != nil {
		return nil, fmt.Errorf("operation %q: relation: %w", body, err)
	}
	for _, f := range strings.Fields(body[open+1 : close]) {
		if f != wsd.Wildcard {
			if err := checkUpdateConst(f); err != nil {
				return nil, fmt.Errorf("operation %q: %w", body, err)
			}
		}
		op.Args = append(op.Args, f)
	}
	tail := strings.TrimSpace(body[close+1:])
	if op.Kind != wsd.OpSet {
		if tail != "" {
			return nil, fmt.Errorf("operation %q: unexpected trailing %q", body, tail)
		}
		return op, nil
	}
	if !strings.HasPrefix(tail, "set ") {
		return nil, fmt.Errorf("update operation %q: want a 'set SLOT = CONST' clause", body)
	}
	for _, part := range strings.Split(strings.TrimPrefix(tail, "set "), ",") {
		l, r, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("set clause %q: want SLOT = CONST", strings.TrimSpace(part))
		}
		slot, err := strconv.Atoi(strings.TrimSpace(l))
		if err != nil || slot < 1 {
			return nil, fmt.Errorf("set clause %q: slot must be a positive integer", strings.TrimSpace(part))
		}
		val := strings.TrimSpace(r)
		if err := checkUpdateConst(val); err != nil {
			return nil, fmt.Errorf("set clause %q: %w", strings.TrimSpace(part), err)
		}
		op.Set = append(op.Set, wsd.SlotAssign{Slot: slot - 1, Value: val})
	}
	return op, nil
}

// checkUpdateConst validates a ground constant of the @update grammar:
// the @wsd constant rules plus the reserved wildcard and the '='/'*'
// characters of the set-clause syntax.
func checkUpdateConst(v string) error {
	if err := checkWSDConst(v); err != nil {
		return err
	}
	if strings.ContainsAny(v, "*=") {
		return fmt.Errorf("constant %q uses a reserved character of the update grammar", v)
	}
	return nil
}

// PrintUpdate renders u in .pw syntax (parsable by ParseUpdate).
func PrintUpdate(out io.Writer, u *wsd.Update) error {
	_, err := fmt.Fprintln(out, u.String())
	return err
}
