// .pw syntax for relational-algebra queries. A @query block names a
// query and lists its output relations, one per line:
//
//	@query high-readings
//	  out: A = project[s](select[#v = hi](Reading(s v)))
//
// The expression grammar (whitespace-insensitive between tokens):
//
//	EXPR  := NAME(col col ...)                  base-relation scan
//	       | project[col, col, ...](EXPR)
//	       | select[OPND OP OPND, ...](EXPR)    OP is = or !=
//	       | rename[col->col, ...](EXPR)
//	       | join(EXPR, EXPR)                   natural join
//	       | union(EXPR, EXPR)
//	       | diff(EXPR, EXPR)                   per-world set difference
//	       | possible(EXPR)                     world-set union (certain rel)
//	       | certain(EXPR)                      world-set intersection
//	       | choiceof(EXPR)                     hypothetical what-if choice
//	       | values[col col ...](v v ...; v v ...)
//	OPND  := #col                               column reference
//	       | NAME                               constant literal
//
// project/rename/join/union/diff/possible/certain/choiceof/select/values
// are reserved words in the relation position. Identifiers extend to the
// next delimiter (whitespace or one of ()[],;#=! or ->). ParseQuery
// validates the query's schema on the way in; the printed form
// (PrintQuery) is canonical and parse→print is a fixed point. Queries
// with ≠ selections or world-set operators parse fine — whether a
// backend supports them is the engines' decision, not the parser's.
package parse

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"pw/internal/algebra"
	"pw/internal/cond"
	"pw/internal/query"
)

// ParseQuery reads a .pw query (one @query block).
func ParseQuery(r io.Reader) (query.Algebra, error) {
	sc := bufio.NewScanner(r)
	lineNo := 0
	seen := false
	name := ""
	var outs []query.Out
	outNames := map[string]bool{}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case line == "@query" || strings.HasPrefix(line, "@query "):
			if seen {
				return query.Algebra{}, fmt.Errorf("line %d: duplicate @query block", lineNo)
			}
			seen = true
			name = strings.TrimSpace(strings.TrimPrefix(line, "@query"))
		case strings.HasPrefix(line, "out:"):
			if !seen {
				return query.Algebra{}, fmt.Errorf("line %d: out before @query", lineNo)
			}
			rest := strings.TrimPrefix(line, "out:")
			outName, exprSrc, ok := strings.Cut(rest, "=")
			if !ok {
				return query.Algebra{}, fmt.Errorf("line %d: want \"out: NAME = EXPR\"", lineNo)
			}
			outName = strings.TrimSpace(outName)
			if outName == "" {
				return query.Algebra{}, fmt.Errorf("line %d: empty output name", lineNo)
			}
			if outNames[outName] {
				return query.Algebra{}, fmt.Errorf("line %d: duplicate output %s", lineNo, outName)
			}
			outNames[outName] = true
			e, err := ParseQueryExpr(exprSrc)
			if err != nil {
				return query.Algebra{}, fmt.Errorf("line %d: %w", lineNo, err)
			}
			outs = append(outs, query.Out{Name: outName, Expr: e})
		default:
			return query.Algebra{}, fmt.Errorf("line %d: unrecognized directive %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return query.Algebra{}, err
	}
	if !seen {
		return query.Algebra{}, fmt.Errorf("missing @query block")
	}
	if len(outs) == 0 {
		return query.Algebra{}, fmt.Errorf("@query block has no out: lines")
	}
	q := query.NewAlgebra(name, outs...)
	for _, o := range q.Outs {
		if _, err := o.Expr.Schema(); err != nil {
			return query.Algebra{}, fmt.Errorf("out %s: %w", o.Name, err)
		}
	}
	return q, nil
}

// ParseQueryExpr parses a single algebra expression in the @query
// grammar. Trailing input is an error.
func ParseQueryExpr(s string) (algebra.Expr, error) {
	p := &exprParser{s: s}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	p.ws()
	if p.pos < len(p.s) {
		return nil, fmt.Errorf("trailing input %q after expression", p.s[p.pos:])
	}
	return e, nil
}

// exprParser is a hand-rolled recursive-descent parser over the
// expression grammar above.
type exprParser struct {
	s   string
	pos int
}

func (p *exprParser) ws() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t') {
		p.pos++
	}
}

// eat consumes tok (after whitespace) when present.
func (p *exprParser) eat(tok string) bool {
	p.ws()
	if strings.HasPrefix(p.s[p.pos:], tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

func (p *exprParser) expect(tok string) error {
	if !p.eat(tok) {
		at := p.s[p.pos:]
		if len(at) > 16 {
			at = at[:16] + "…"
		}
		return fmt.Errorf("want %q at %q", tok, at)
	}
	return nil
}

// ident reads an identifier: everything up to the next delimiter.
func (p *exprParser) ident() (string, error) {
	p.ws()
	start := p.pos
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		if c == ' ' || c == '\t' || strings.IndexByte("()[],;#=!", c) >= 0 {
			break
		}
		if c == '-' && p.pos+1 < len(p.s) && p.s[p.pos+1] == '>' {
			break
		}
		p.pos++
	}
	if p.pos == start {
		at := p.s[p.pos:]
		if len(at) > 16 {
			at = at[:16] + "…"
		}
		return "", fmt.Errorf("want identifier at %q", at)
	}
	return p.s[start:p.pos], nil
}

// identList reads a comma-separated identifier list terminated by "]".
func (p *exprParser) identList() ([]string, error) {
	var out []string
	for {
		id, err := p.ident()
		if err != nil {
			return nil, err
		}
		out = append(out, id)
		if !p.eat(",") {
			return out, nil
		}
	}
}

// fieldList reads a whitespace-separated identifier list up to the
// given closing delimiter (exclusive).
func (p *exprParser) fieldList(close byte) ([]string, error) {
	var out []string
	for {
		p.ws()
		if p.pos >= len(p.s) || p.s[p.pos] == close || p.s[p.pos] == ';' {
			return out, nil
		}
		id, err := p.ident()
		if err != nil {
			return nil, err
		}
		out = append(out, id)
	}
}

func (p *exprParser) operand() (algebra.Operand, error) {
	if p.eat("#") {
		col, err := p.ident()
		if err != nil {
			return algebra.Operand{}, fmt.Errorf("after #: %w", err)
		}
		return algebra.Col(col), nil
	}
	k, err := p.ident()
	if err != nil {
		return algebra.Operand{}, err
	}
	return algebra.Lit(k), nil
}

func (p *exprParser) expr() (algebra.Expr, error) {
	head, err := p.ident()
	if err != nil {
		return nil, err
	}
	switch head {
	case "project":
		if err := p.expect("["); err != nil {
			return nil, err
		}
		cols, err := p.identList()
		if err != nil {
			return nil, err
		}
		e, err := p.bracketedArg()
		if err != nil {
			return nil, err
		}
		return algebra.Project{E: e, Cols: cols}, nil

	case "select":
		if err := p.expect("["); err != nil {
			return nil, err
		}
		var preds []algebra.Pred
		for {
			l, err := p.operand()
			if err != nil {
				return nil, err
			}
			op := cond.Eq
			if p.eat("!=") {
				op = cond.Neq
			} else if err := p.expect("="); err != nil {
				return nil, err
			}
			r, err := p.operand()
			if err != nil {
				return nil, err
			}
			preds = append(preds, algebra.Pred{Op: op, L: l, R: r})
			if !p.eat(",") {
				break
			}
		}
		e, err := p.bracketedArg()
		if err != nil {
			return nil, err
		}
		return algebra.Select{E: e, Preds: preds}, nil

	case "rename":
		if err := p.expect("["); err != nil {
			return nil, err
		}
		var from, to []string
		for {
			f, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expect("->"); err != nil {
				return nil, err
			}
			t, err := p.ident()
			if err != nil {
				return nil, err
			}
			from, to = append(from, f), append(to, t)
			if !p.eat(",") {
				break
			}
		}
		e, err := p.bracketedArg()
		if err != nil {
			return nil, err
		}
		return algebra.Rename{E: e, From: from, To: to}, nil

	case "join", "union", "diff":
		if err := p.expect("("); err != nil {
			return nil, err
		}
		l, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		r, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		switch head {
		case "join":
			return algebra.Join{L: l, R: r}, nil
		case "diff":
			return algebra.Diff{L: l, R: r}, nil
		}
		return algebra.Union{L: l, R: r}, nil

	case "possible", "certain", "choiceof":
		if err := p.expect("("); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		switch head {
		case "possible":
			return algebra.Possible{E: e}, nil
		case "certain":
			return algebra.Certain{E: e}, nil
		}
		return algebra.ChoiceOf{E: e}, nil

	case "values":
		if err := p.expect("["); err != nil {
			return nil, err
		}
		cols, err := p.fieldList(']')
		if err != nil {
			return nil, err
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var rows [][]string
		for {
			p.ws()
			if p.pos < len(p.s) && p.s[p.pos] == ')' {
				break
			}
			row, err := p.fieldList(')')
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
			if !p.eat(";") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return algebra.ConstRel{Cols: cols, Rows: rows}, nil

	default: // base-relation scan
		if err := p.expect("("); err != nil {
			return nil, fmt.Errorf("scan %s: %w", head, err)
		}
		cols, err := p.fieldList(')')
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return algebra.Scan(head, cols...), nil
	}
}

// bracketedArg finishes a project/select/rename form: "](EXPR)".
func (p *exprParser) bracketedArg() (algebra.Expr, error) {
	if err := p.expect("]"); err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return e, nil
}

// FormatQueryExpr renders an expression in the @query grammar
// (parsable by ParseQueryExpr).
func FormatQueryExpr(e algebra.Expr) (string, error) {
	var b strings.Builder
	if err := formatExpr(&b, e); err != nil {
		return "", err
	}
	return b.String(), nil
}

func formatExpr(b *strings.Builder, e algebra.Expr) error {
	switch n := e.(type) {
	case algebra.Rel:
		b.WriteString(n.Name)
		b.WriteString("(")
		b.WriteString(strings.Join(n.Cols, " "))
		b.WriteString(")")
	case algebra.Project:
		b.WriteString("project[")
		b.WriteString(strings.Join(n.Cols, ", "))
		b.WriteString("](")
		if err := formatExpr(b, n.E); err != nil {
			return err
		}
		b.WriteString(")")
	case algebra.Select:
		b.WriteString("select[")
		for i, pr := range n.Preds {
			if i > 0 {
				b.WriteString(", ")
			}
			formatOperand(b, pr.L)
			if pr.Op == cond.Neq {
				b.WriteString(" != ")
			} else {
				b.WriteString(" = ")
			}
			formatOperand(b, pr.R)
		}
		b.WriteString("](")
		if err := formatExpr(b, n.E); err != nil {
			return err
		}
		b.WriteString(")")
	case algebra.Rename:
		b.WriteString("rename[")
		for i := range n.From {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(n.From[i])
			b.WriteString("->")
			b.WriteString(n.To[i])
		}
		b.WriteString("](")
		if err := formatExpr(b, n.E); err != nil {
			return err
		}
		b.WriteString(")")
	case algebra.Join, algebra.Union, algebra.Diff:
		var l, r algebra.Expr
		switch m := n.(type) {
		case algebra.Join:
			b.WriteString("join(")
			l, r = m.L, m.R
		case algebra.Diff:
			b.WriteString("diff(")
			l, r = m.L, m.R
		default:
			u := n.(algebra.Union)
			b.WriteString("union(")
			l, r = u.L, u.R
		}
		if err := formatExpr(b, l); err != nil {
			return err
		}
		b.WriteString(", ")
		if err := formatExpr(b, r); err != nil {
			return err
		}
		b.WriteString(")")
	case algebra.Possible, algebra.Certain, algebra.ChoiceOf:
		var arg algebra.Expr
		switch m := n.(type) {
		case algebra.Possible:
			b.WriteString("possible(")
			arg = m.E
		case algebra.Certain:
			b.WriteString("certain(")
			arg = m.E
		default:
			b.WriteString("choiceof(")
			arg = n.(algebra.ChoiceOf).E
		}
		if err := formatExpr(b, arg); err != nil {
			return err
		}
		b.WriteString(")")
	case algebra.ConstRel:
		b.WriteString("values[")
		b.WriteString(strings.Join(n.Cols, " "))
		b.WriteString("](")
		for i, row := range n.Rows {
			if i > 0 {
				b.WriteString("; ")
			}
			b.WriteString(strings.Join(row, " "))
		}
		b.WriteString(")")
	default:
		return fmt.Errorf("parse: expression %T has no @query syntax", e)
	}
	return nil
}

func formatOperand(b *strings.Builder, o algebra.Operand) {
	if k, isConst := o.Const(); isConst {
		b.WriteString(k)
		return
	}
	col, _ := o.Column()
	b.WriteString("#")
	b.WriteString(col)
}

// PrintQuery renders q in .pw syntax (parsable by ParseQuery).
func PrintQuery(w io.Writer, q query.Algebra) error {
	header := "@query"
	if q.Name != "" {
		header += " " + q.Name
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, o := range q.Outs {
		s, err := FormatQueryExpr(o.Expr)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "  out: %s = %s\n", o.Name, s); err != nil {
			return err
		}
	}
	return nil
}
