// .pw syntax for world-set decompositions. A @wsd block declares a
// schema and a list of components, each a list of alternative fact-sets:
//
//	@wsd
//	  relation: Emp(2)
//	  relation: Dept(2)
//	  component:
//	    alt: Emp(carol sales), Emp(dana eng)
//	    alt: Emp(carol eng), Emp(dana sales)
//	  component:
//	    alt: Dept(eng 1)
//	    alt: Dept(eng 2)
//
// Facts are Rel(c1 c2 ...) with ground, whitespace-separated constants;
// a bare "alt:" is the empty alternative; a component with no alt lines
// denotes the empty world set. ParseWSD normalizes on the way in, so the
// printed form (PrintWSD / WSD.String) is canonical and parse→print is a
// fixed point.
package parse

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"

	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/table"
	"pw/internal/wsd"
)

// ParseWSD reads a .pw world-set decomposition (one @wsd block).
func ParseWSD(r io.Reader) (*wsd.WSD, error) {
	sc := bufio.NewScanner(r)
	lineNo := 0
	seenWSD := false
	inComponents := false
	var schema table.Schema
	schemaSeen := map[string]bool{}
	var comps [][]wsd.Alt
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case line == "@wsd":
			if seenWSD {
				return nil, fmt.Errorf("line %d: duplicate @wsd block", lineNo)
			}
			seenWSD = true
		case strings.HasPrefix(line, "relation:"):
			if !seenWSD {
				return nil, fmt.Errorf("line %d: relation before @wsd", lineNo)
			}
			if inComponents {
				return nil, fmt.Errorf("line %d: relation declarations must precede components", lineNo)
			}
			name, arity, err := parseHeader(strings.TrimPrefix(line, "relation:"))
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			if schemaSeen[name] {
				return nil, fmt.Errorf("line %d: duplicate relation %s", lineNo, name)
			}
			schemaSeen[name] = true
			schema = append(schema, table.SchemaRel{Name: name, Arity: arity})
		case line == "component:":
			if !seenWSD {
				return nil, fmt.Errorf("line %d: component before @wsd", lineNo)
			}
			inComponents = true
			comps = append(comps, nil)
		case strings.HasPrefix(line, "alt:"):
			if len(comps) == 0 {
				return nil, fmt.Errorf("line %d: alt before component", lineNo)
			}
			alt, err := parseAlt(strings.TrimPrefix(line, "alt:"))
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			comps[len(comps)-1] = append(comps[len(comps)-1], alt)
		default:
			return nil, fmt.Errorf("line %d: unrecognized directive %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !seenWSD {
		return nil, fmt.Errorf("missing @wsd block")
	}
	w := wsd.New(schema)
	for _, alts := range comps {
		if err := w.AddComponent(alts...); err != nil {
			return nil, err
		}
	}
	if err := w.Normalize(); err != nil {
		return nil, err
	}
	return w, nil
}

// parseAlt parses a comma-separated list of Rel(c1 c2 ...) facts; empty
// input is the empty alternative.
func parseAlt(s string) (wsd.Alt, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return wsd.Alt{}, nil
	}
	var alt wsd.Alt
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		open := strings.IndexByte(part, '(')
		if open <= 0 || !strings.HasSuffix(part, ")") {
			return nil, fmt.Errorf("fact %q: want Rel(c1 c2 ...)", part)
		}
		name := strings.TrimSpace(part[:open])
		fields := strings.Fields(part[open+1 : len(part)-1])
		for _, f := range fields {
			if strings.HasPrefix(f, "?") {
				return nil, fmt.Errorf("fact %q: decomposition facts must be ground, got %s", part, f)
			}
		}
		alt = append(alt, wsd.Fact{Rel: name, Args: rel.Fact(fields)})
	}
	return alt, nil
}

// PrintWSD renders w in .pw syntax (parsable by ParseWSD).
func PrintWSD(out io.Writer, w *wsd.WSD) error {
	_, err := fmt.Fprintln(out, w.String())
	return err
}

// Source is a parsed .pw file that may carry either representation
// backend — a conditioned-table database or a world-set decomposition —
// or a relational-algebra query block (exactly one field is non-nil).
type Source struct {
	DB    *table.Database
	WSD   *wsd.WSD
	Query *query.Algebra
}

// ParseSource reads a .pw file and dispatches on its first directive:
// @table files parse as databases, @wsd files as decompositions, and
// @query files as algebra queries. Mixing block forms in one file is an
// error (from the respective sub-parsers).
func ParseSource(r io.Reader) (*Source, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "@wsd" {
			w, err := ParseWSD(bytes.NewReader(data))
			if err != nil {
				return nil, err
			}
			return &Source{WSD: w}, nil
		}
		if line == "@query" || strings.HasPrefix(line, "@query ") {
			q, err := ParseQuery(bytes.NewReader(data))
			if err != nil {
				return nil, err
			}
			return &Source{Query: &q}, nil
		}
		break
	}
	d, err := ParseDatabase(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	return &Source{DB: d}, nil
}
