// .pw syntax for world-set decompositions. A @wsd block declares a
// schema and a list of components, each either a list of alternative
// fact-sets or one attribute-level fact template with slot-alternative
// lists:
//
//	@wsd
//	  relation: Emp(2)
//	  relation: Dept(2)
//	  component:
//	    alt: Emp(carol sales), Emp(dana eng)
//	    alt: Emp(carol eng), Emp(dana sales)
//	  component:
//	    tmpl: Dept(eng {1|2})
//
// Facts are Rel(c1 c2 ...) with ground, whitespace-separated constants;
// a bare "alt:" is the empty alternative; a component with no alt lines
// denotes the empty world set. A tmpl: line gives one fact template
// whose slots are either a single constant or a braced alternative list
// {a|b|c}; the component's alternatives are the cross product of the
// slot choices (commas between slots are accepted and ignored, so
// "Dept(eng, {1|2})" parses too). A component holds either alt lines or
// exactly one tmpl line, never both. ParseWSD normalizes on the way in,
// so the printed form (PrintWSD / WSD.String) is canonical and
// parse→print is a fixed point.
package parse

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"

	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/table"
	"pw/internal/wsd"
)

// ParseWSD reads a .pw world-set decomposition (one @wsd block).
func ParseWSD(r io.Reader) (*wsd.WSD, error) {
	sc := bufio.NewScanner(r)
	lineNo := 0
	seenWSD := false
	inComponents := false
	var schema table.Schema
	schemaSeen := map[string]bool{}
	type comp struct {
		alts []wsd.Alt
		tmpl *wsdTemplate
	}
	var comps []comp
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case line == "@wsd":
			if seenWSD {
				return nil, fmt.Errorf("line %d: duplicate @wsd block", lineNo)
			}
			seenWSD = true
		case strings.HasPrefix(line, "relation:"):
			if !seenWSD {
				return nil, fmt.Errorf("line %d: relation before @wsd", lineNo)
			}
			if inComponents {
				return nil, fmt.Errorf("line %d: relation declarations must precede components", lineNo)
			}
			name, arity, err := parseHeader(strings.TrimPrefix(line, "relation:"))
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			if schemaSeen[name] {
				return nil, fmt.Errorf("line %d: duplicate relation %s", lineNo, name)
			}
			schemaSeen[name] = true
			schema = append(schema, table.SchemaRel{Name: name, Arity: arity})
		case line == "component:":
			if !seenWSD {
				return nil, fmt.Errorf("line %d: component before @wsd", lineNo)
			}
			inComponents = true
			comps = append(comps, comp{})
		case strings.HasPrefix(line, "alt:"):
			if len(comps) == 0 {
				return nil, fmt.Errorf("line %d: alt before component", lineNo)
			}
			if comps[len(comps)-1].tmpl != nil {
				return nil, fmt.Errorf("line %d: a component holds either alt lines or one tmpl line, not both", lineNo)
			}
			alt, err := parseAlt(strings.TrimPrefix(line, "alt:"))
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			c := &comps[len(comps)-1]
			c.alts = append(c.alts, alt)
		case strings.HasPrefix(line, "tmpl:"):
			if len(comps) == 0 {
				return nil, fmt.Errorf("line %d: tmpl before component", lineNo)
			}
			c := &comps[len(comps)-1]
			if c.tmpl != nil {
				return nil, fmt.Errorf("line %d: a component holds at most one tmpl line", lineNo)
			}
			if len(c.alts) > 0 {
				return nil, fmt.Errorf("line %d: a component holds either alt lines or one tmpl line, not both", lineNo)
			}
			tmpl, err := parseTemplate(strings.TrimPrefix(line, "tmpl:"))
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			c.tmpl = tmpl
		default:
			return nil, fmt.Errorf("line %d: unrecognized directive %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !seenWSD {
		return nil, fmt.Errorf("missing @wsd block")
	}
	w := wsd.New(schema)
	for _, c := range comps {
		if c.tmpl != nil {
			if err := w.AddTemplateComponent(c.tmpl.rel, c.tmpl.cells...); err != nil {
				return nil, err
			}
			continue
		}
		if err := w.AddComponent(c.alts...); err != nil {
			return nil, err
		}
	}
	if err := w.Normalize(); err != nil {
		return nil, err
	}
	return w, nil
}

// wsdTemplate is one parsed tmpl: line — a relation name plus per-slot
// alternative value lists.
type wsdTemplate struct {
	rel   string
	cells [][]string
}

// parseTemplate parses Rel(slot slot ...) where a slot is a single
// ground constant or a braced alternative list {a|b|c}. Commas between
// slots are separators; braces do not nest.
func parseTemplate(s string) (*wsdTemplate, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open <= 0 || !strings.HasSuffix(s, ")") {
		return nil, fmt.Errorf("template %q: want Rel(slot slot ...)", s)
	}
	name := strings.TrimSpace(s[:open])
	if err := checkWSDConst(name); err != nil {
		return nil, fmt.Errorf("template %q: relation: %w", s, err)
	}
	body := s[open+1 : len(s)-1]
	t := &wsdTemplate{rel: name}
	for _, tok := range strings.FieldsFunc(body, func(r rune) bool {
		return r == ' ' || r == '\t' || r == ','
	}) {
		if strings.HasPrefix(tok, "{") {
			if !strings.HasSuffix(tok, "}") {
				return nil, fmt.Errorf("template %q: slot %q: unclosed brace", s, tok)
			}
			inner := tok[1 : len(tok)-1]
			var cell []string
			for _, v := range strings.Split(inner, "|") {
				if err := checkWSDConst(v); err != nil {
					return nil, fmt.Errorf("template %q: slot %q: %w", s, tok, err)
				}
				cell = append(cell, v)
			}
			t.cells = append(t.cells, cell)
			continue
		}
		if err := checkWSDConst(tok); err != nil {
			return nil, fmt.Errorf("template %q: slot %q: %w", s, tok, err)
		}
		t.cells = append(t.cells, []string{tok})
	}
	return t, nil
}

// checkWSDConst validates a ground constant of the @wsd grammar: it must
// be non-empty, not a variable, and free of the slot syntax's reserved
// characters, so the printed form always re-parses.
func checkWSDConst(v string) error {
	if v == "" {
		return fmt.Errorf("empty constant")
	}
	if strings.HasPrefix(v, "?") {
		return fmt.Errorf("decomposition facts must be ground, got %s", v)
	}
	if strings.ContainsAny(v, "{}|,()") {
		return fmt.Errorf("constant %q uses a reserved character of the slot grammar", v)
	}
	return nil
}

// parseAlt parses a comma-separated list of Rel(c1 c2 ...) facts; empty
// input is the empty alternative.
func parseAlt(s string) (wsd.Alt, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return wsd.Alt{}, nil
	}
	var alt wsd.Alt
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		open := strings.IndexByte(part, '(')
		if open <= 0 || !strings.HasSuffix(part, ")") {
			return nil, fmt.Errorf("fact %q: want Rel(c1 c2 ...)", part)
		}
		name := strings.TrimSpace(part[:open])
		fields := strings.Fields(part[open+1 : len(part)-1])
		for _, f := range fields {
			if strings.HasPrefix(f, "?") {
				return nil, fmt.Errorf("fact %q: decomposition facts must be ground, got %s", part, f)
			}
		}
		alt = append(alt, wsd.Fact{Rel: name, Args: rel.Fact(fields)})
	}
	return alt, nil
}

// PrintWSD renders w in .pw syntax (parsable by ParseWSD).
func PrintWSD(out io.Writer, w *wsd.WSD) error {
	_, err := fmt.Fprintln(out, w.String())
	return err
}

// Source is a parsed .pw file that may carry either representation
// backend — a conditioned-table database or a world-set decomposition —
// a relational-algebra query block, or an update program (exactly one
// field is non-nil).
type Source struct {
	DB     *table.Database
	WSD    *wsd.WSD
	Query  *query.Algebra
	Update *wsd.Update
}

// ParseSource reads a .pw file and dispatches on its first directive:
// @table files parse as databases, @wsd files as decompositions, @query
// files as algebra queries, and @update files as update programs.
// Mixing block forms in one file is an error (from the respective
// sub-parsers).
func ParseSource(r io.Reader) (*Source, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "@wsd" {
			w, err := ParseWSD(bytes.NewReader(data))
			if err != nil {
				return nil, err
			}
			return &Source{WSD: w}, nil
		}
		if line == "@query" || strings.HasPrefix(line, "@query ") {
			q, err := ParseQuery(bytes.NewReader(data))
			if err != nil {
				return nil, err
			}
			return &Source{Query: &q}, nil
		}
		if line == "@update" {
			u, err := ParseUpdate(bytes.NewReader(data))
			if err != nil {
				return nil, err
			}
			return &Source{Update: u}, nil
		}
		break
	}
	d, err := ParseDatabase(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	return &Source{DB: d}, nil
}
