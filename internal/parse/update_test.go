package parse

import (
	"strings"
	"testing"

	"pw/internal/wsd"
)

func TestParseUpdateRoundTrip(t *testing.T) {
	in := strings.Join([]string{
		"# write path exercise",
		"@update",
		"  insert: Emp(carol sales)",
		"  delete: Emp(carol *)",
		"  update: Emp(* sales) set 2 = eng, 1 = boss",
		"  assume: Dept(eng 1)",
		"  assume-not: Dept(eng 2)",
	}, "\n")
	u, err := ParseUpdate(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []wsd.UpdateOp{
		{Kind: wsd.OpInsert, Rel: "Emp", Args: []string{"carol", "sales"}},
		{Kind: wsd.OpDelete, Rel: "Emp", Args: []string{"carol", "*"}},
		{Kind: wsd.OpSet, Rel: "Emp", Args: []string{"*", "sales"},
			Set: []wsd.SlotAssign{{Slot: 1, Value: "eng"}, {Slot: 0, Value: "boss"}}},
		{Kind: wsd.OpAssume, Rel: "Dept", Args: []string{"eng", "1"}},
		{Kind: wsd.OpAssumeNot, Rel: "Dept", Args: []string{"eng", "2"}},
	}
	if len(u.Ops) != len(want) {
		t.Fatalf("parsed %d ops, want %d", len(u.Ops), len(want))
	}
	for i, op := range u.Ops {
		if op.String() != want[i].String() {
			t.Errorf("op %d: %q, want %q", i, op.String(), want[i].String())
		}
	}
	// Print → parse is a fixed point.
	again, err := ParseUpdate(strings.NewReader(u.String()))
	if err != nil {
		t.Fatalf("re-parse printed form: %v", err)
	}
	if again.String() != u.String() {
		t.Fatalf("print/parse not a fixed point:\n%s\nvs\n%s", u, again)
	}
}

func TestParseUpdateErrors(t *testing.T) {
	bad := []struct {
		name, in, want string
	}{
		{"missing block", "insert: R(a)", "before @update"},
		{"no block at all", "# empty\n", "missing @update"},
		{"empty block", "@update\n", "no operations"},
		{"duplicate block", "@update\n@update\n", "duplicate @update"},
		{"bad keyword", "@update\n  upsert: R(a)", "unrecognized update operation"},
		{"no parens", "@update\n  insert: R a", "want Rel(arg"},
		{"variable arg", "@update\n  insert: R(?x)", "must be ground"},
		{"reserved char", "@update\n  insert: R(a=b)", "reserved character"},
		{"set on delete", "@update\n  delete: R(a) set 1 = b", "unexpected trailing"},
		{"update without set", "@update\n  update: R(a)", "want a 'set"},
		{"set bad slot", "@update\n  update: R(a) set 0 = b", "positive integer"},
		{"set missing eq", "@update\n  update: R(a) set 1 b", "want SLOT = CONST"},
		{"set wildcard value", "@update\n  update: R(a) set 1 = *", "reserved character"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseUpdate(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestParseSourceUpdate(t *testing.T) {
	src, err := ParseSource(strings.NewReader("@update\n  insert: R(a b)\n"))
	if err != nil {
		t.Fatal(err)
	}
	if src.Update == nil || src.DB != nil || src.WSD != nil || src.Query != nil {
		t.Fatalf("ParseSource dispatched wrong field: %+v", src)
	}
	if got := src.Update.String(); got != "@update\n  insert: R(a b)" {
		t.Fatalf("parsed update renders %q", got)
	}
}
