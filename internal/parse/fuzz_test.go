package parse

import (
	"strings"
	"testing"
)

// FuzzParseDatabase asserts the parser's two safety properties on
// arbitrary input: it never panics, and any database it accepts
// round-trips — printing it and re-parsing reaches a fixed point
// (print(parse(print(d))) == print(d)), so the .pw format is closed
// under its own printer.
func FuzzParseDatabase(f *testing.F) {
	f.Add("@table T(2)\n  row: a ?x\n")
	f.Add("@table T(2)\n  global: ?x != b\n  row: a ?x | ?x = c, a != ?y\n")
	f.Add("# comment\n\n@table Emp(2)\n  global: ?dc != ?dd\n  row: carol ?dc\n  row: dana ?dd\n")
	f.Add("@table T(0)\n  row:\n")
	f.Add("@table T(1)\n  row: ? | true\n")
	f.Add("@table A(1)\n  row: x\n@table B(3)\n  row: ?u ?u c\n")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := ParseDatabase(strings.NewReader(input))
		if err != nil {
			return
		}
		var printed strings.Builder
		if err := PrintDatabase(&printed, d); err != nil {
			t.Fatalf("print failed on accepted input %q: %v", input, err)
		}
		d2, err := ParseDatabase(strings.NewReader(printed.String()))
		if err != nil {
			t.Fatalf("printed form does not re-parse: %v\ninput:   %q\nprinted: %q", err, input, printed.String())
		}
		var printed2 strings.Builder
		if err := PrintDatabase(&printed2, d2); err != nil {
			t.Fatalf("second print failed: %v", err)
		}
		if printed2.String() != printed.String() {
			t.Fatalf("print is not a fixed point:\nfirst:  %q\nsecond: %q", printed.String(), printed2.String())
		}
	})
}

// FuzzParseInstance is the same contract for instance files.
func FuzzParseInstance(f *testing.F) {
	f.Add("@relation T(2)\n  fact: a b\n")
	f.Add("@relation Emp(2)\n  fact: alice sales\n  fact: bob eng\n\n@relation Dept(2)\n  fact: sales 1\n")
	f.Add("@relation T(0)\n  fact:\n")
	f.Add("# only a comment\n")
	f.Fuzz(func(t *testing.T, input string) {
		inst, err := ParseInstance(strings.NewReader(input))
		if err != nil {
			return
		}
		var printed strings.Builder
		if err := PrintInstance(&printed, inst); err != nil {
			t.Fatalf("print failed on accepted input %q: %v", input, err)
		}
		inst2, err := ParseInstance(strings.NewReader(printed.String()))
		if err != nil {
			t.Fatalf("printed form does not re-parse: %v\ninput:   %q\nprinted: %q", err, input, printed.String())
		}
		var printed2 strings.Builder
		if err := PrintInstance(&printed2, inst2); err != nil {
			t.Fatalf("second print failed: %v", err)
		}
		if printed2.String() != printed.String() {
			t.Fatalf("print is not a fixed point:\nfirst:  %q\nsecond: %q", printed.String(), printed2.String())
		}
	})
}
