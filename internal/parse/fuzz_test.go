package parse

import (
	"strings"
	"testing"
)

// FuzzParseDatabase asserts the parser's two safety properties on
// arbitrary input: it never panics, and any database it accepts
// round-trips — printing it and re-parsing reaches a fixed point
// (print(parse(print(d))) == print(d)), so the .pw format is closed
// under its own printer.
func FuzzParseDatabase(f *testing.F) {
	f.Add("@table T(2)\n  row: a ?x\n")
	f.Add("@table T(2)\n  global: ?x != b\n  row: a ?x | ?x = c, a != ?y\n")
	f.Add("# comment\n\n@table Emp(2)\n  global: ?dc != ?dd\n  row: carol ?dc\n  row: dana ?dd\n")
	f.Add("@table T(0)\n  row:\n")
	f.Add("@table T(1)\n  row: ? | true\n")
	f.Add("@table A(1)\n  row: x\n@table B(3)\n  row: ?u ?u c\n")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := ParseDatabase(strings.NewReader(input))
		if err != nil {
			return
		}
		var printed strings.Builder
		if err := PrintDatabase(&printed, d); err != nil {
			t.Fatalf("print failed on accepted input %q: %v", input, err)
		}
		d2, err := ParseDatabase(strings.NewReader(printed.String()))
		if err != nil {
			t.Fatalf("printed form does not re-parse: %v\ninput:   %q\nprinted: %q", err, input, printed.String())
		}
		var printed2 strings.Builder
		if err := PrintDatabase(&printed2, d2); err != nil {
			t.Fatalf("second print failed: %v", err)
		}
		if printed2.String() != printed.String() {
			t.Fatalf("print is not a fixed point:\nfirst:  %q\nsecond: %q", printed.String(), printed2.String())
		}
	})
}

// FuzzParseInstance is the same contract for instance files.
func FuzzParseInstance(f *testing.F) {
	f.Add("@relation T(2)\n  fact: a b\n")
	f.Add("@relation Emp(2)\n  fact: alice sales\n  fact: bob eng\n\n@relation Dept(2)\n  fact: sales 1\n")
	f.Add("@relation T(0)\n  fact:\n")
	f.Add("# only a comment\n")
	f.Fuzz(func(t *testing.T, input string) {
		inst, err := ParseInstance(strings.NewReader(input))
		if err != nil {
			return
		}
		var printed strings.Builder
		if err := PrintInstance(&printed, inst); err != nil {
			t.Fatalf("print failed on accepted input %q: %v", input, err)
		}
		inst2, err := ParseInstance(strings.NewReader(printed.String()))
		if err != nil {
			t.Fatalf("printed form does not re-parse: %v\ninput:   %q\nprinted: %q", err, input, printed.String())
		}
		var printed2 strings.Builder
		if err := PrintInstance(&printed2, inst2); err != nil {
			t.Fatalf("second print failed: %v", err)
		}
		if printed2.String() != printed.String() {
			t.Fatalf("print is not a fixed point:\nfirst:  %q\nsecond: %q", printed.String(), printed2.String())
		}
	})
}

// FuzzParseWSD extends the harness to the @wsd decomposition syntax: the
// parser never panics, and any decomposition it accepts normalizes to a
// canonical form whose printing is a fixed point of parse→print.
func FuzzParseWSD(f *testing.F) {
	f.Add("@wsd\n  relation: R(2)\n  component:\n    alt: R(a b)\n    alt: R(a c)\n")
	f.Add("@wsd\n  relation: Emp(2)\n  relation: Dept(2)\n  component:\n    alt: Emp(carol sales), Emp(dana eng)\n    alt: Emp(carol eng), Emp(dana sales)\n  component:\n    alt: Dept(eng 1)\n")
	f.Add("@wsd\n  relation: R(1)\n  component:\n    alt:\n    alt: R(a)\n")
	f.Add("@wsd\n  relation: R(0)\n  component:\n    alt: R()\n")
	f.Add("@wsd\n  relation: R(1)\n  component:\n")
	f.Add("# comment\n\n@wsd\n  relation: R(2)\n  component:\n    alt: R(a b), R(b a)\n    alt: R(a b)\n    alt: R(a b), R(b a)\n")
	f.Add("@wsd\n  relation: R(1)\n  component:\n    alt: R(x)\n    alt: R(y)\n  component:\n    alt: R(x)\n    alt: R(z)\n")
	// Attribute-level slot syntax: templates, fixed and open slots,
	// the comma form, single-value braces, overlapping templates (the
	// merge path), a template overlapping a tuple-level alternative,
	// and the rejected shapes — nested braces, unclosed braces, empty
	// slot values, mixed alt/tmpl components.
	f.Add("@wsd\n  relation: R(2)\n  component:\n    tmpl: R(a {1|2|3})\n")
	f.Add("@wsd\n  relation: R(3)\n  component:\n    tmpl: R(a, {1|2|3}, b)\n")
	f.Add("@wsd\n  relation: R(2)\n  component:\n    tmpl: R({a} {1})\n")
	f.Add("@wsd\n  relation: R(2)\n  component:\n    tmpl: R({a|b} {1|2})\n  component:\n    tmpl: R({b|c} {2|3})\n")
	f.Add("@wsd\n  relation: R(1)\n  component:\n    tmpl: R({x|y})\n  component:\n    alt: R(x)\n    alt:\n")
	f.Add("@wsd\n  relation: R(2)\n  component:\n    tmpl: R({a|{b}} c)\n")
	f.Add("@wsd\n  relation: R(2)\n  component:\n    tmpl: R({a|b c)\n")
	f.Add("@wsd\n  relation: R(2)\n  component:\n    tmpl: R({|} c)\n")
	f.Add("@wsd\n  relation: R(1)\n  component:\n    alt: R(a)\n    tmpl: R({a|b})\n")
	f.Fuzz(func(t *testing.T, input string) {
		w, err := ParseWSD(strings.NewReader(input))
		if err != nil {
			return
		}
		var printed strings.Builder
		if err := PrintWSD(&printed, w); err != nil {
			t.Fatalf("print failed on accepted input %q: %v", input, err)
		}
		w2, err := ParseWSD(strings.NewReader(printed.String()))
		if err != nil {
			t.Fatalf("printed form does not re-parse: %v\ninput:   %q\nprinted: %q", err, input, printed.String())
		}
		var printed2 strings.Builder
		if err := PrintWSD(&printed2, w2); err != nil {
			t.Fatalf("second print failed: %v", err)
		}
		if printed2.String() != printed.String() {
			t.Fatalf("print is not a fixed point:\nfirst:  %q\nsecond: %q", printed.String(), printed2.String())
		}
		// Normalization must preserve the world count exactly: the
		// re-parsed decomposition denotes the same set.
		if w.Count().Cmp(w2.Count()) != 0 {
			t.Fatalf("world count drifted across round trip: %s vs %s", w.Count(), w2.Count())
		}
	})
}

// FuzzParseSource fuzzes the dispatcher with all four block forms —
// the @wsd and @query seeds mirror the inputs pwq's query subcommands
// (poss-ans / cert-ans / cont -query) read, the @update seeds what
// `pwq update` and the server's write op read.
func FuzzParseSource(f *testing.F) {
	f.Add("@table T(2)\n  row: a ?x\n")
	f.Add("@wsd\n  relation: R(1)\n  component:\n    alt: R(a)\n")
	f.Add("@wsd\n  relation: Reading(2)\n  component:\n    alt: Reading(s00 lo)\n    alt: Reading(s00 hi)\n")
	f.Add("@wsd\n  relation: Reading(2)\n  component:\n    tmpl: Reading(s00 {lo|hi})\n  component:\n    tmpl: Reading(s01 {lo|mid|hi})\n")
	f.Add("@query high\n  out: A = project[s](select[#v = hi](Reading(s v)))\n")
	f.Add("@query\n  out: A = join(R(a b), S(b c))\n  out: B = union(R(a b), rename[a->x](R(x b)))\n")
	f.Add("@query neq\n  out: A = select[#a != c0](R(a))\n")
	f.Add("@query v\n  out: A = values[a b](x y; z w)\n")
	f.Add("@query ws\n  out: A = certain(possible(R(a)))\n  out: B = diff(R(a), choiceof(R(a)))\n")
	f.Add("@update\n  insert: R(a b)\n  delete: R(a *)\n")
	f.Add("@update\n  update: R(* lo) set 2 = hi, 1 = x\n  assume-not: R(c d)\n")
	f.Add("# only a comment\n")
	f.Fuzz(func(t *testing.T, input string) {
		src, err := ParseSource(strings.NewReader(input))
		if err != nil {
			return
		}
		set := 0
		for _, ok := range []bool{src.DB != nil, src.WSD != nil, src.Query != nil, src.Update != nil} {
			if ok {
				set++
			}
		}
		if set != 1 {
			t.Fatalf("dispatcher set %d of DB/WSD/Query/Update for %q; exactly one must be set", set, input)
		}
	})
}

// FuzzParseQuery asserts the query parser's safety properties: it never
// panics, and any query it accepts round-trips — printing reaches a
// fixed point of parse→print, so the @query grammar is closed under its
// own printer.
func FuzzParseQuery(f *testing.F) {
	f.Add("@query high\n  out: A = project[s](select[#v = hi](Reading(s v)))\n")
	f.Add("@query\n  out: A = R(a b)\n")
	f.Add("@query\n  out: A = rename[a->b](R(a))\n  out: B = select[#b = #b](R(b))\n")
	f.Add("@query\n  out: A = union(values[a](x; y), R(a))\n")
	f.Add("@query\n  out: A = join(join(R(a b), S(b c)), T(c d))\n")
	// World-set algebra forms: possible/certain/choiceof/diff, nested and
	// mixed with the relational operators.
	f.Add("@query nested\n  out: A = certain(possible(select[#v = hi](Reading(s v))))\n")
	f.Add("@query whatif\n  out: A = join(choiceof(possible(R(a b))), S(b c))\n")
	f.Add("@query d\n  out: A = diff(possible(R(a)), certain(R(a)))\n")
	f.Add("@query\n  out: A = choiceof(diff(R(a b), select[#a != x](R(a b))))\n")
	f.Add("@query\n  out: A = possible(certain(possible(R(a))))\n")
	f.Fuzz(func(t *testing.T, input string) {
		q, err := ParseQuery(strings.NewReader(input))
		if err != nil {
			return
		}
		var printed strings.Builder
		if err := PrintQuery(&printed, q); err != nil {
			t.Fatalf("print failed on accepted input %q: %v", input, err)
		}
		q2, err := ParseQuery(strings.NewReader(printed.String()))
		if err != nil {
			t.Fatalf("printed form does not re-parse: %v\ninput:   %q\nprinted: %q", err, input, printed.String())
		}
		var printed2 strings.Builder
		if err := PrintQuery(&printed2, q2); err != nil {
			t.Fatalf("second print failed: %v", err)
		}
		if printed2.String() != printed.String() {
			t.Fatalf("print is not a fixed point:\nfirst:  %q\nsecond: %q", printed.String(), printed2.String())
		}
	})
}

// FuzzParseUpdate asserts the @update parser's safety properties: it
// never panics, and any program it accepts round-trips — printing
// reaches a fixed point of parse→print, so the update grammar is closed
// under its own printer.
func FuzzParseUpdate(f *testing.F) {
	f.Add("@update\n  insert: R(a b)\n")
	f.Add("@update\n  delete: R(a *)\n  assume: R(a b)\n")
	f.Add("@update\n  update: R(* lo) set 2 = hi\n")
	f.Add("@update\n  update: R(x y) set 2 = hi, 1 = boss\n  assume-not: R(c d)\n")
	f.Add("@update\n  insert: R()\n")
	f.Fuzz(func(t *testing.T, input string) {
		u, err := ParseUpdate(strings.NewReader(input))
		if err != nil {
			return
		}
		var printed strings.Builder
		if err := PrintUpdate(&printed, u); err != nil {
			t.Fatalf("print failed on accepted input %q: %v", input, err)
		}
		u2, err := ParseUpdate(strings.NewReader(printed.String()))
		if err != nil {
			t.Fatalf("printed form does not re-parse: %v\ninput:   %q\nprinted: %q", err, input, printed.String())
		}
		var printed2 strings.Builder
		if err := PrintUpdate(&printed2, u2); err != nil {
			t.Fatalf("second print failed: %v", err)
		}
		if printed2.String() != printed.String() {
			t.Fatalf("print is not a fixed point:\nfirst:  %q\nsecond: %q", printed.String(), printed2.String())
		}
	})
}
