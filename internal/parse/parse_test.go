package parse

import (
	"bytes"
	"strings"
	"testing"

	"pw/internal/cond"
	"pw/internal/table"
	"pw/internal/value"
)

const sampleDB = `
# the Fig. 1 c-table
@table T(3)
  global: ?x != 1, ?y != 2
  row: 0 1 ?z | ?z = ?z
  row: 0 ?x ?y | ?y = 0
  row: ?y ?x ?x | ?x != ?y

@table S(1)
  row: 7
`

func TestParseDatabase(t *testing.T) {
	d, err := ParseDatabase(strings.NewReader(sampleDB))
	if err != nil {
		t.Fatal(err)
	}
	tb := d.Table("T")
	if tb == nil || tb.Arity != 3 || len(tb.Rows) != 3 {
		t.Fatalf("table T wrong: %v", tb)
	}
	if len(tb.Global) != 2 {
		t.Errorf("global = %v", tb.Global)
	}
	if tb.Rows[1].Values[1] != value.Var("x") {
		t.Errorf("row value = %v", tb.Rows[1].Values)
	}
	if len(tb.Rows[2].Cond) != 1 || tb.Rows[2].Cond[0].Op != cond.Neq {
		t.Errorf("local cond = %v", tb.Rows[2].Cond)
	}
	if d.Table("S") == nil {
		t.Error("table S missing")
	}
	if d.Kind() != table.KindC {
		t.Errorf("kind = %v", d.Kind())
	}
}

func TestDatabaseRoundTrip(t *testing.T) {
	d, err := ParseDatabase(strings.NewReader(sampleDB))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := PrintDatabase(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := ParseDatabase(&buf)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if d.String() != d2.String() {
		t.Errorf("round trip changed database:\n%s\nvs\n%s", d, d2)
	}
}

const sampleInst = `
@relation T(2)
  fact: 1 2
  fact: 3 4
@relation S(1)
  fact: 9
`

func TestParseInstance(t *testing.T) {
	i, err := ParseInstance(strings.NewReader(sampleInst))
	if err != nil {
		t.Fatal(err)
	}
	if i.Relation("T").Len() != 2 || i.Relation("S").Len() != 1 {
		t.Errorf("instance = %v", i)
	}
}

func TestInstanceRoundTrip(t *testing.T) {
	i, err := ParseInstance(strings.NewReader(sampleInst))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := PrintInstance(&buf, i); err != nil {
		t.Fatal(err)
	}
	i2, err := ParseInstance(&buf)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if !i.Equal(i2) {
		t.Error("round trip changed instance")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"row: 1 2",                       // row before @table
		"@table T(x)",                    // bad arity
		"@table T(2)\nrow: 1",            // arity mismatch
		"@table T(1)\nrow: 1 | ?x << 2",  // bad atom
		"@table T",                       // missing arity
		"bogus line",                     // unknown directive
		"@table T(1)\nglobal: ?x ?y = 1", // malformed atom side
	}
	for _, c := range cases {
		if _, err := ParseDatabase(strings.NewReader(c)); err == nil {
			t.Errorf("no error for %q", c)
		}
	}
	instCases := []string{
		"fact: 1",                   // fact before @relation
		"@relation R(1)\nfact: 1 2", // arity mismatch
		"@relation R(1)\nfact: ?x",  // variable in fact
		"@relation R(1)\nnonsense",  // unknown directive
	}
	for _, c := range instCases {
		if _, err := ParseInstance(strings.NewReader(c)); err == nil {
			t.Errorf("no error for %q", c)
		}
	}
}

func TestParseAtomForms(t *testing.T) {
	a, err := ParseAtom("?x != c3")
	if err != nil || a.Op != cond.Neq || a.L != value.Var("x") || a.R != value.Const("c3") {
		t.Errorf("atom = %v err=%v", a, err)
	}
	a, err = ParseAtom("1 = 1")
	if err != nil || !a.TriviallyTrue() {
		t.Errorf("atom = %v err=%v", a, err)
	}
	if c, err := ParseConjunction(" true "); err != nil || len(c) != 0 {
		t.Errorf("true conjunction = %v err=%v", c, err)
	}
}
