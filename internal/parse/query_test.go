package parse

import (
	"strings"
	"testing"

	"pw/internal/algebra"
	"pw/internal/query"
	"pw/internal/rel"
)

func TestParseQueryRoundTrip(t *testing.T) {
	src := `# high readings per sensor
@query high
  out: A = project[s](select[#v = hi](Reading(s v)))
  out: B = union(Reading(s v), Reading(s v))
`
	q, err := ParseQuery(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "high" || len(q.Outs) != 2 {
		t.Fatalf("parsed %s with %d outs", q.Label(), len(q.Outs))
	}
	var printed strings.Builder
	if err := PrintQuery(&printed, q); err != nil {
		t.Fatal(err)
	}
	q2, err := ParseQuery(strings.NewReader(printed.String()))
	if err != nil {
		t.Fatalf("printed form does not re-parse: %v\n%s", err, printed.String())
	}
	var printed2 strings.Builder
	if err := PrintQuery(&printed2, q2); err != nil {
		t.Fatal(err)
	}
	if printed.String() != printed2.String() {
		t.Fatalf("print is not a fixed point:\n%s\nvs\n%s", printed.String(), printed2.String())
	}
}

func TestParseQueryExprForms(t *testing.T) {
	cases := []struct {
		src  string
		want string // canonical printed form; "" means same as src
	}{
		{"R(a b)", ""},
		{"project[a, b](R(a b))", ""},
		{"project[ a,b ](R(a  b))", "project[a, b](R(a b))"},
		{"select[#a = x, #a != #b](R(a b))", ""},
		{"rename[a->z](R(a b))", ""},
		{"join(R(a b), S(b c))", ""},
		{"union(R(a b), R(a b))", ""},
		{"values[a b](x y; z w)", ""},
		{"values[a]()", ""},
		{"join(project[a](R(a b)), select[#a = c0](S(a)))", ""},
		{"possible(R(a b))", ""},
		{"certain(possible(select[#v = hi](Reading(s v))))", ""},
		{"choiceof(possible(R(a b)))", ""},
		{"diff(R(a b), S(a b))", ""},
		{"join(choiceof(R(a b)), diff(S(b c), certain(S(b c))))", ""},
		{"possible( certain( R(a) ) )", "possible(certain(R(a)))"},
	}
	for _, tc := range cases {
		e, err := ParseQueryExpr(tc.src)
		if err != nil {
			t.Errorf("%q: %v", tc.src, err)
			continue
		}
		got, err := FormatQueryExpr(e)
		if err != nil {
			t.Errorf("%q: format: %v", tc.src, err)
			continue
		}
		want := tc.want
		if want == "" {
			want = tc.src
		}
		if got != want {
			t.Errorf("%q: printed as %q, want %q", tc.src, got, want)
		}
		if _, err := ParseQueryExpr(got); err != nil {
			t.Errorf("%q: canonical form %q does not re-parse: %v", tc.src, got, err)
		}
	}
}

func TestParseQueryErrors(t *testing.T) {
	bad := []string{
		"out: A = R(a)\n",                            // out before @query
		"@query\n",                                   // no outs
		"@query\n  out: A = \n",                      // empty expression
		"@query\n  out: A = R(a\n",                   // unclosed paren
		"@query\n  out: A = project[](R(a))\n",       // empty projection list
		"@query\n  out: A = project[z](R(a))\n",      // unknown column (schema check)
		"@query\n  out: A = R(a)\n  out: A = R(a)\n", // duplicate out
		"@query\n  out: A = select[#a](R(a))\n",      // predicate lacks operator
		"@query\n  nonsense\n",
		"@query\n@query\n  out: A = R(a)\n", // duplicate block
	}
	for _, src := range bad {
		if _, err := ParseQuery(strings.NewReader(src)); err == nil {
			t.Errorf("accepted malformed query:\n%s", src)
		}
	}
}

func TestParseQueryEvaluates(t *testing.T) {
	q, err := ParseQuery(strings.NewReader(
		"@query\n  out: A = project[who](join(Emp(who dept), select[#floor = 2](Dept(dept floor))))\n"))
	if err != nil {
		t.Fatal(err)
	}
	inst := rel.NewInstance()
	emp := inst.EnsureRelation("Emp", 2)
	emp.AddRow("carol", "eng")
	emp.AddRow("dana", "sales")
	dept := inst.EnsureRelation("Dept", 2)
	dept.AddRow("eng", "2")
	dept.AddRow("sales", "1")
	out, err := query.Query(q).Eval(inst)
	if err != nil {
		t.Fatal(err)
	}
	if r := out.Relation("A"); r == nil || r.Len() != 1 || !r.Has(rel.Fact{"carol"}) {
		t.Fatalf("evaluated to %s, want A(carol)", out)
	}
}

func TestParseSourceDispatchesQuery(t *testing.T) {
	src, err := ParseSource(strings.NewReader("@query q1\n  out: A = R(a)\n"))
	if err != nil {
		t.Fatal(err)
	}
	if src.Query == nil || src.DB != nil || src.WSD != nil {
		t.Fatalf("dispatcher returned %+v, want only Query set", src)
	}
	if src.Query.Name != "q1" {
		t.Fatalf("query name %q", src.Query.Name)
	}
}

// Interface sanity: parsed queries are liftable positive algebra unless
// they use ≠.
func TestParsedQueryFragment(t *testing.T) {
	pos, err := ParseQuery(strings.NewReader("@query\n  out: A = select[#a = x](R(a))\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !pos.Positive() {
		t.Error("equality-only query must be positive")
	}
	neg, err := ParseQuery(strings.NewReader("@query\n  out: A = select[#a != x](R(a))\n"))
	if err != nil {
		t.Fatal(err)
	}
	if neg.Positive() {
		t.Error("≠ query must not be positive")
	}
	if _, ok := query.AsLiftable(query.Query(neg)); !ok {
		t.Error("algebra queries must be liftable")
	}
	var _ algebra.Expr = pos.Outs[0].Expr
}

// World-set operators parse, print canonically, and are flagged by the
// query-level fragment predicates; per-instance evaluation refuses them.
func TestParsedWorldSetQueryFragment(t *testing.T) {
	ws, err := ParseQuery(strings.NewReader("@query\n  out: A = certain(possible(R(a)))\n"))
	if err != nil {
		t.Fatal(err)
	}
	if ws.Positive() {
		t.Error("world-set query must not be positive")
	}
	if !query.HasWorldSetOps(ws) {
		t.Error("HasWorldSetOps must flag possible/certain")
	}
	if _, err := query.Query(ws).Eval(rel.NewInstance()); err == nil {
		t.Error("single-instance Eval must refuse world-set operators")
	}
	d, err := ParseQuery(strings.NewReader("@query\n  out: A = diff(R(a), S(a))\n"))
	if err != nil {
		t.Fatal(err)
	}
	if query.HasWorldSetOps(d) {
		t.Error("diff alone is a per-world map, not a world-set operator")
	}
	if !query.HasExtendedOps(d) {
		t.Error("HasExtendedOps must flag diff")
	}
	inst := rel.NewInstance()
	r := inst.EnsureRelation("R", 1)
	r.AddRow("x")
	r.AddRow("y")
	s := inst.EnsureRelation("S", 1)
	s.AddRow("y")
	out, err := query.Query(d).Eval(inst)
	if err != nil {
		t.Fatal(err)
	}
	if a := out.Relation("A"); a == nil || a.Len() != 1 || !a.Has(rel.Fact{"x"}) {
		t.Fatalf("diff evaluated to %s, want A(x)", out)
	}
}
