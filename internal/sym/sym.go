// Package sym interns the symbols of the possible-worlds framework —
// constants drawn from 𝒟 and variables (nulls) drawn from the disjoint set
// 𝒱 (§2.2) — into dense uint32 IDs. Every hot path of the engine (valuation
// search, fact storage, world deduplication, condition closure) runs on IDs
// and 64-bit fingerprints; strings exist only at the API boundary, where
// they are interned on entry and resolved on display.
//
// The intern table is process-global and append-only: an ID, once handed
// out, resolves to the same name forever, so IDs may be compared, hashed
// and stored freely. The var/const partition is encoded in the ID itself
// (the top bit), keeping the two namespaces of the paper disjoint by
// construction.
package sym

import (
	"sort"
	"sync"
)

// ID is an interned symbol: a constant or variable name plus its kind.
// Constants occupy the IDs without VarBit, variables the IDs with it; the
// low 31 bits are a dense serial within the kind's namespace, assigned in
// interning order.
type ID uint32

// VarBit distinguishes variables from constants inside an ID.
const VarBit ID = 1 << 31

// None is a reserved sentinel: no interned symbol ever receives it.
const None ID = 1<<32 - 1

// space is one append-only intern namespace.
type space struct {
	ids   map[string]uint32
	names []string
}

func (s *space) intern(name string) uint32 {
	if id, ok := s.ids[name]; ok {
		return id
	}
	id := uint32(len(s.names))
	if id >= uint32(VarBit)-1 {
		panic("sym: namespace exhausted")
	}
	s.ids[name] = id
	s.names = append(s.names, name)
	return id
}

var (
	mu     sync.RWMutex
	consts = space{ids: make(map[string]uint32)}
	vars   = space{ids: make(map[string]uint32)}
)

func init() {
	// Serial 0 of each namespace is the empty name, so the zero values of
	// ID-backed types denote the empty-named constant, as value.Value
	// documents.
	Const("")
	Var("")
}

// Const interns name as a constant and returns its ID.
func Const(name string) ID {
	mu.RLock()
	id, ok := consts.ids[name]
	mu.RUnlock()
	if ok {
		return ID(id)
	}
	mu.Lock()
	id = consts.intern(name)
	mu.Unlock()
	return ID(id)
}

// Var interns name as a variable and returns its ID.
func Var(name string) ID {
	mu.RLock()
	id, ok := vars.ids[name]
	mu.RUnlock()
	if ok {
		return ID(id) | VarBit
	}
	mu.Lock()
	id = vars.intern(name)
	mu.Unlock()
	return ID(id) | VarBit
}

// LookupConst returns the ID of an already-interned constant. ok is false
// when the name has never been interned — useful for negative membership
// probes that must not grow the intern table.
func LookupConst(name string) (ID, bool) {
	mu.RLock()
	id, ok := consts.ids[name]
	mu.RUnlock()
	return ID(id), ok
}

// IsVar reports whether id names a variable.
func (id ID) IsVar() bool { return id&VarBit != 0 }

// Serial returns the dense index of id within its namespace.
func (id ID) Serial() int { return int(id &^ VarBit) }

// Name resolves id back to its interned name.
func (id ID) Name() string {
	s := &consts
	if id.IsVar() {
		s = &vars
	}
	mu.RLock()
	name := s.names[id.Serial()]
	mu.RUnlock()
	return name
}

// String renders constants bare and variables with a leading '?', matching
// the .pw text format.
func (id ID) String() string {
	if id.IsVar() {
		return "?" + id.Name()
	}
	return id.Name()
}

// Compare orders IDs canonically: constants before variables, then by
// name. This is the display order of the engine; hot paths compare raw IDs
// for equality instead.
func Compare(a, b ID) int {
	switch {
	case !a.IsVar() && b.IsVar():
		return -1
	case a.IsVar() && !b.IsVar():
		return 1
	case a == b:
		return 0
	}
	an, bn := a.Name(), b.Name()
	switch {
	case an < bn:
		return -1
	case an > bn:
		return 1
	}
	return 0
}

// SortByName sorts ids in canonical order (constants first, then by name).
func SortByName(ids []ID) {
	sort.Slice(ids, func(i, j int) bool { return Compare(ids[i], ids[j]) < 0 })
}

// ConstCount returns the number of interned constants (diagnostics).
func ConstCount() int {
	mu.RLock()
	defer mu.RUnlock()
	return len(consts.names)
}

// VarCount returns the number of interned variables (diagnostics).
func VarCount() int {
	mu.RLock()
	defer mu.RUnlock()
	return len(vars.names)
}
