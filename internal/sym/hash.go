package sym

// Fingerprints replace the canonical-string keys ("strings.Join with \x00
// separators") that the seed engine used to deduplicate facts, relations
// and whole possible worlds. A fingerprint is not an identity — consumers
// keep collision buckets and fall back to exact ID comparison — but it is
// the only thing the hot paths hash.

// FNV-1a parameters, applied word-wise over IDs rather than byte-wise:
// cheaper per element, and the final Mix avalanche compensates for the
// weaker per-step diffusion.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashIDs fingerprints a sequence of IDs (order-sensitive).
func HashIDs(ids []ID) uint64 {
	h := uint64(fnvOffset64)
	for _, id := range ids {
		h ^= uint64(id)
		h *= fnvPrime64
	}
	return h
}

// HashString fingerprints a string (FNV-1a, byte-wise); used for relation
// names when combining per-relation fingerprints into an instance
// fingerprint.
func HashString(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// Mix finalizes a fingerprint with the splitmix64 avalanche so that
// combining fingerprints commutatively (by addition) still separates
// near-identical sets.
func Mix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Tuple is a ground tuple of interned symbols: the engine's working form
// of a fact. The boundary type rel.Fact ([]string) converts to and from it
// at the API edge.
type Tuple []ID

// Fingerprint returns the tuple's order-sensitive 64-bit fingerprint.
func (t Tuple) Fingerprint() uint64 { return HashIDs(t) }

// Equal reports component-wise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of t.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Compare orders tuples canonically (by Compare on components, shorter
// first on prefix ties) — the display order.
func (t Tuple) Compare(u Tuple) int {
	n := min(len(t), len(u))
	for i := 0; i < n; i++ {
		if c := Compare(t[i], u[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	}
	return 0
}

// Names resolves the tuple to a fresh slice of names.
func (t Tuple) Names() []string {
	out := make([]string, len(t))
	for i, id := range t {
		out[i] = id.Name()
	}
	return out
}
