package sym

// Universe is a per-database view of the intern table: it assigns the
// database's variables dense slots 0..Len()-1 so that a valuation is a
// flat []ID indexed by slot — no map allocation per candidate valuation
// during the exponential searches of Proposition 2.1.
type Universe struct {
	vars []ID
	slot []int32 // indexed by variable Serial(); -1 = not in this universe
}

// NewUniverse builds a universe over the given variable IDs (in the order
// given, which becomes the slot order). Duplicates are ignored after their
// first occurrence; constant IDs are rejected.
func NewUniverse(vars []ID) *Universe {
	u := &Universe{}
	maxSerial := -1
	for _, v := range vars {
		if !v.IsVar() {
			panic("sym: universe over a constant " + v.Name())
		}
		if s := v.Serial(); s > maxSerial {
			maxSerial = s
		}
	}
	u.slot = make([]int32, maxSerial+1)
	for i := range u.slot {
		u.slot[i] = -1
	}
	for _, v := range vars {
		if u.slot[v.Serial()] == -1 {
			u.slot[v.Serial()] = int32(len(u.vars))
			u.vars = append(u.vars, v)
		}
	}
	return u
}

// Len returns the number of variables in the universe.
func (u *Universe) Len() int { return len(u.vars) }

// Vars returns the universe's variables in slot order. Callers must not
// mutate the returned slice.
func (u *Universe) Vars() []ID { return u.vars }

// Slot returns the dense index of variable v, or -1 when v is not in the
// universe.
func (u *Universe) Slot(v ID) int {
	s := v.Serial()
	if s >= len(u.slot) {
		return -1
	}
	return int(u.slot[s])
}
