package sym

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInternRoundTrip(t *testing.T) {
	// intern → resolve → intern is the identity, for both namespaces.
	f := func(name string) bool {
		c := Const(name)
		v := Var(name)
		return c.Name() == name && v.Name() == name &&
			Const(c.Name()) == c && Var(v.Name()) == v &&
			!c.IsVar() && v.IsVar() && c != v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestInternStable(t *testing.T) {
	a := Const("stable-const")
	for i := 0; i < 100; i++ {
		if Const("stable-const") != a {
			t.Fatal("re-interning must return the same ID")
		}
	}
}

func TestNamespacesDisjoint(t *testing.T) {
	// 𝒟 ∩ 𝒱 = ∅: the same name yields distinct symbols per kind.
	names := []string{"", "x", "0", "~z0", "日本語"}
	for _, n := range names {
		c, v := Const(n), Var(n)
		if c == v {
			t.Errorf("Const(%q) == Var(%q)", n, n)
		}
		if c.IsVar() || !v.IsVar() {
			t.Errorf("kind bits wrong for %q", n)
		}
		if c.Name() != n || v.Name() != n {
			t.Errorf("resolution broken for %q", n)
		}
	}
}

func TestZeroIDIsEmptyConstant(t *testing.T) {
	// The zero Value of the value package relies on serial 0 = "".
	var zero ID
	if zero.IsVar() || zero.Name() != "" {
		t.Errorf("zero ID = %v (%q)", zero, zero.Name())
	}
	if Const("") != zero {
		t.Error("empty constant must be ID 0")
	}
}

func TestLookupConstDoesNotIntern(t *testing.T) {
	name := fmt.Sprintf("never-interned-%d", rand.Int63())
	if _, ok := LookupConst(name); ok {
		t.Fatal("lookup of a fresh name must miss")
	}
	n := ConstCount()
	LookupConst(name)
	if ConstCount() != n {
		t.Error("LookupConst grew the intern table")
	}
	id := Const(name)
	got, ok := LookupConst(name)
	if !ok || got != id {
		t.Error("LookupConst must find interned names")
	}
}

func TestCompareOrdersConstantsBeforeVariables(t *testing.T) {
	if Compare(Const("z"), Var("a")) != -1 {
		t.Error("constants sort before variables")
	}
	if Compare(Var("a"), Var("b")) != -1 || Compare(Var("b"), Var("a")) != 1 {
		t.Error("variables sort by name")
	}
	if Compare(Const("x"), Const("x")) != 0 {
		t.Error("equal IDs compare equal")
	}
}

func TestTupleFingerprintRespectsEquality(t *testing.T) {
	f := func(a, b []uint8) bool {
		ta := make(Tuple, len(a))
		for i, x := range a {
			ta[i] = Const(fmt.Sprintf("c%d", x))
		}
		tb := make(Tuple, len(b))
		for i, x := range b {
			tb[i] = Const(fmt.Sprintf("c%d", x))
		}
		if ta.Equal(tb) {
			return ta.Fingerprint() == tb.Fingerprint()
		}
		return true // unequal tuples may collide; consumers keep buckets
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestTupleFingerprintOrderSensitive(t *testing.T) {
	a := Tuple{Const("1"), Const("2")}
	b := Tuple{Const("2"), Const("1")}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("want order-sensitive tuple fingerprints (a permutation is a different fact)")
	}
}

func TestUniverseSlots(t *testing.T) {
	x, y, z := Var("ux"), Var("uy"), Var("uz")
	u := NewUniverse([]ID{x, y, x}) // duplicate x ignored
	if u.Len() != 2 {
		t.Fatalf("Len = %d", u.Len())
	}
	if u.Slot(x) != 0 || u.Slot(y) != 1 {
		t.Errorf("slots = %d, %d", u.Slot(x), u.Slot(y))
	}
	if u.Slot(z) != -1 {
		t.Error("absent variable must report slot -1")
	}
}

func TestUniverseRejectsConstants(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("universe over a constant must panic")
		}
	}()
	NewUniverse([]ID{Const("1")})
}
