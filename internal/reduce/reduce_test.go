package reduce

import (
	"math/rand"
	"testing"

	"pw/internal/decide"
	"pw/internal/graph"
	"pw/internal/sat"
	"pw/internal/table"
)

// Every test here checks the defining property of a reduction: the source
// instance's answer equals the target decision problem's answer, with the
// target decided by internal/decide. This validates the construction and
// the decision procedure at once.

func smallGraphs(seed int64, count, maxN int) []*graph.G {
	rng := rand.New(rand.NewSource(seed))
	gs := []*graph.G{
		graph.Paper(),
		graph.Cycle(4),
		graph.Cycle(5),
		graph.Complete(3),
		graph.Complete(4), // not 3-colorable
	}
	for len(gs) < count {
		gs = append(gs, graph.Random(rng, 2+rng.Intn(maxN-1), 0.5))
	}
	return gs
}

func TestMembETableFrom3Col(t *testing.T) {
	for i, g := range smallGraphs(1, 12, 6) {
		inst := MembETableFrom3Col(g)
		if k := inst.D.Kind(); k != table.KindE && k != table.KindCodd {
			t.Fatalf("graph %d: reduction must build an e-table, got %v", i, k)
		}
		got, err := decide.Membership(inst.I0, inst.Q0(), inst.D)
		if err != nil {
			t.Fatal(err)
		}
		if want := g.Colorable3(); got != want {
			t.Errorf("graph %d (%v): memb=%v colorable=%v", i, g, got, want)
		}
	}
}

func TestMembITableFrom3Col(t *testing.T) {
	for i, g := range smallGraphs(2, 12, 6) {
		inst := MembITableFrom3Col(g)
		if k := inst.D.Kind(); k != table.KindI && k != table.KindCodd {
			t.Fatalf("graph %d: reduction must build an i-table, got %v", i, k)
		}
		got, err := decide.Membership(inst.I0, inst.Q0(), inst.D)
		if err != nil {
			t.Fatal(err)
		}
		if want := g.Colorable3(); got != want {
			t.Errorf("graph %d (%v): memb=%v colorable=%v", i, g, got, want)
		}
	}
}

func TestMembViewFrom3Col(t *testing.T) {
	for i, g := range smallGraphs(3, 8, 5) {
		if len(g.Edges) == 0 {
			continue
		}
		inst := MembViewFrom3Col(g)
		if inst.D.Kind() != table.KindCodd {
			t.Fatalf("graph %d: base must be Codd tables, got %v", i, inst.D.Kind())
		}
		got, err := decide.Membership(inst.I0, inst.Q, inst.D)
		if err != nil {
			t.Fatal(err)
		}
		if want := g.Colorable3(); got != want {
			t.Errorf("graph %d (%v): view-memb=%v colorable=%v", i, g, got, want)
		}
	}
}

func smallDNFs(seed int64, count int) []sat.DNF {
	rng := rand.New(rand.NewSource(seed))
	fs := []sat.DNF{sat.PaperDNF()}
	// A genuine small tautology: x0 ∨ ¬x0 padded to width 3 over 2 vars:
	// (x0∧x0∧x0) ∨ (¬x0∧¬x0∧¬x0).
	taut := sat.DNF{NVars: 1, Clauses: []sat.Clause3{
		{{Var: 0}, {Var: 0}, {Var: 0}},
		{{Var: 0, Neg: true}, {Var: 0, Neg: true}, {Var: 0, Neg: true}},
	}}
	fs = append(fs, taut)
	for len(fs) < count {
		fs = append(fs, sat.RandomDNF(rng, 2+rng.Intn(2), 1+rng.Intn(4)))
	}
	return fs
}

func smallCNFs(seed int64, count int) []sat.CNF {
	rng := rand.New(rand.NewSource(seed))
	fs := []sat.CNF{sat.PaperCNF()}
	// An unsatisfiable CNF over one variable.
	unsat := sat.CNF{NVars: 1, Clauses: []sat.Clause3{
		{{Var: 0}, {Var: 0}, {Var: 0}},
		{{Var: 0, Neg: true}, {Var: 0, Neg: true}, {Var: 0, Neg: true}},
	}}
	fs = append(fs, unsat)
	for len(fs) < count {
		fs = append(fs, sat.RandomCNF(rng, 2+rng.Intn(2), 1+rng.Intn(4)))
	}
	return fs
}

func TestUniqCTableFromDNF(t *testing.T) {
	for i, f := range smallDNFs(4, 10) {
		inst := UniqCTableFromDNF(f)
		got, err := decide.Uniqueness(inst.Q0, inst.D0, inst.I)
		if err != nil {
			t.Fatal(err)
		}
		if want := f.Tautology(); got != want {
			t.Errorf("formula %d (%s): uniq=%v taut=%v", i, f, got, want)
		}
	}
}

func TestUniqViewFromGraph(t *testing.T) {
	for i, g := range smallGraphs(5, 8, 5) {
		if len(g.Edges) == 0 {
			continue
		}
		inst := UniqViewFromGraph(g)
		got, err := decide.Uniqueness(inst.Q0, inst.D0, inst.I)
		if err != nil {
			t.Fatal(err)
		}
		if want := !g.Colorable3(); got != want {
			t.Errorf("graph %d (%v): uniq=%v non-colorable=%v", i, g, got, want)
		}
	}
}

func smallForallExists(seed int64, count int) []sat.ForallExists {
	rng := rand.New(rand.NewSource(seed))
	qs := []sat.ForallExists{
		// ∀x0 ∃x1: (x0∨x1∨x1)∧(¬x0∨¬x1∨¬x1) — valid (pick x1 = ¬x0).
		{NX: 1, NY: 1, Clauses: []sat.Clause3{
			{{Var: 0}, {Var: 1}, {Var: 1}},
			{{Var: 0, Neg: true}, {Var: 1, Neg: true}, {Var: 1, Neg: true}},
		}},
		// ∀x0 ∃x1: (x0∧…): invalid (fails at x0=false).
		{NX: 1, NY: 1, Clauses: []sat.Clause3{
			{{Var: 0}, {Var: 0}, {Var: 0}},
		}},
	}
	for len(qs) < count {
		qs = append(qs, sat.RandomForallExists(rng, 1+rng.Intn(2), 1+rng.Intn(2), 1+rng.Intn(2)))
	}
	return qs
}

func TestContITableFromForallExists(t *testing.T) {
	for i, q := range smallForallExists(6, 6) {
		inst := ContITableFromForallExists(q)
		got, err := decide.Containment(inst.Q0, inst.D0, inst.Q, inst.D)
		if err != nil {
			t.Fatal(err)
		}
		if want := q.Valid(); got != want {
			t.Errorf("instance %d (%s): cont=%v valid=%v", i, q, got, want)
		}
	}
}

func TestContViewFromForallExists(t *testing.T) {
	for i, q := range smallForallExists(7, 6) {
		inst := ContViewFromForallExists(q)
		got, err := decide.Containment(inst.Q0, inst.D0, inst.Q, inst.D)
		if err != nil {
			t.Fatal(err)
		}
		if want := q.Valid(); got != want {
			t.Errorf("instance %d (%s): cont=%v valid=%v", i, q, got, want)
		}
	}
}

func TestContQoFromDNF(t *testing.T) {
	for i, f := range smallDNFs(8, 8) {
		inst := ContQoFromDNF(f)
		got, err := decide.Containment(inst.Q0, inst.D0, inst.Q, inst.D)
		if err != nil {
			t.Fatal(err)
		}
		if want := f.Tautology(); got != want {
			t.Errorf("formula %d (%s): cont=%v taut=%v", i, f, got, want)
		}
	}
}

func TestContQoETableFromForallExists(t *testing.T) {
	for i, q := range smallForallExists(9, 5) {
		inst := ContQoETableFromForallExists(q)
		got, err := decide.Containment(inst.Q0, inst.D0, inst.Q, inst.D)
		if err != nil {
			t.Fatal(err)
		}
		if want := q.Valid(); got != want {
			t.Errorf("instance %d (%s): cont=%v valid=%v", i, q, got, want)
		}
	}
}

func TestContCTableFromForallExists(t *testing.T) {
	for i, q := range smallForallExists(10, 4) {
		inst, err := ContCTableFromForallExists(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decide.Containment(inst.Q0, inst.D0, inst.Q, inst.D)
		if err != nil {
			t.Fatal(err)
		}
		if want := q.Valid(); got != want {
			t.Errorf("instance %d (%s): cont=%v valid=%v", i, q, got, want)
		}
	}
}

func TestPossETableFrom3SAT(t *testing.T) {
	for i, f := range smallCNFs(11, 10) {
		inst := PossETableFrom3SAT(f)
		if k := inst.D.Kind(); k != table.KindE && k != table.KindCodd {
			t.Fatalf("formula %d: reduction must build an e-table, got %v", i, k)
		}
		got, err := decide.Possible(inst.P, inst.Q, inst.D)
		if err != nil {
			t.Fatal(err)
		}
		if want := f.Satisfiable(); got != want {
			t.Errorf("formula %d (%s): poss=%v sat=%v", i, f, got, want)
		}
	}
}

func TestPossITableFrom3SAT(t *testing.T) {
	for i, f := range smallCNFs(12, 10) {
		inst := PossITableFrom3SAT(f)
		got, err := decide.Possible(inst.P, inst.Q, inst.D)
		if err != nil {
			t.Fatal(err)
		}
		if want := f.Satisfiable(); got != want {
			t.Errorf("formula %d (%s): poss=%v sat=%v", i, f, got, want)
		}
	}
}

// tinyDNFs keeps the variable count of the occurrence table small: the
// generic first-order decision procedure enumerates valuations of all
// 3·|clauses| occurrence variables — that exponential cost is precisely
// the content of Theorems 5.2(2)/5.3(2).
func tinyDNFs(seed int64, count int) []sat.DNF {
	rng := rand.New(rand.NewSource(seed))
	fs := []sat.DNF{
		// x0 ∨ ¬x0: tautology.
		{NVars: 1, Clauses: []sat.Clause3{
			{{Var: 0}, {Var: 0}, {Var: 0}},
			{{Var: 0, Neg: true}, {Var: 0, Neg: true}, {Var: 0, Neg: true}},
		}},
		// Single clause: never a tautology.
		{NVars: 2, Clauses: []sat.Clause3{{{Var: 0}, {Var: 1}, {Var: 0}}}},
	}
	for len(fs) < count {
		fs = append(fs, sat.RandomDNF(rng, 1+rng.Intn(2), 1+rng.Intn(2)))
	}
	return fs
}

// tinyCNFs bounds the datalog gadget similarly.
func tinyCNFs(seed int64, count int) []sat.CNF {
	rng := rand.New(rand.NewSource(seed))
	fs := []sat.CNF{
		// x0 ∧ ¬x0 (padded): unsatisfiable.
		{NVars: 1, Clauses: []sat.Clause3{
			{{Var: 0}, {Var: 0}, {Var: 0}},
			{{Var: 0, Neg: true}, {Var: 0, Neg: true}, {Var: 0, Neg: true}},
		}},
	}
	for len(fs) < count {
		fs = append(fs, sat.RandomCNF(rng, 1+rng.Intn(2), 1+rng.Intn(2)))
	}
	return fs
}

func TestPossFOFromDNF(t *testing.T) {
	for i, f := range tinyDNFs(13, 5) {
		inst := PossFOFromDNF(f)
		got, err := decide.Possible(inst.P, inst.Q, inst.D)
		if err != nil {
			t.Fatal(err)
		}
		if want := !f.Tautology(); got != want {
			t.Errorf("formula %d (%s): poss=%v non-taut=%v", i, f, got, want)
		}
	}
}

func TestCertFOFromDNF(t *testing.T) {
	for i, f := range tinyDNFs(14, 5) {
		inst := CertFOFromDNF(f)
		got, err := decide.Certain(inst.P, inst.Q, inst.D)
		if err != nil {
			t.Fatal(err)
		}
		if want := f.Tautology(); got != want {
			t.Errorf("formula %d (%s): cert=%v taut=%v", i, f, got, want)
		}
	}
}

func TestCertCTableFromDNF(t *testing.T) {
	for i, f := range smallDNFs(15, 10) {
		inst := CertCTableFromDNF(f)
		got, err := decide.Certain(inst.P, inst.Q, inst.D)
		if err != nil {
			t.Fatal(err)
		}
		if want := f.Tautology(); got != want {
			t.Errorf("formula %d (%s): cert=%v taut=%v", i, f, got, want)
		}
	}
}

func TestPossDatalogFrom3SAT(t *testing.T) {
	for i, f := range tinyCNFs(16, 6) {
		inst := PossDatalogFrom3SAT(f)
		got, err := decide.Possible(inst.P, inst.Q, inst.D)
		if err != nil {
			t.Fatal(err)
		}
		if want := f.Satisfiable(); got != want {
			t.Errorf("formula %d (%s): poss=%v sat=%v", i, f, got, want)
		}
	}
}

func TestPossViewFrom3Col(t *testing.T) {
	for i, g := range smallGraphs(17, 6, 5) {
		if len(g.Edges) == 0 {
			continue
		}
		inst := PossViewFrom3Col(g)
		got, err := decide.Possible(inst.P, inst.Q, inst.D)
		if err != nil {
			t.Fatal(err)
		}
		if want := g.Colorable3(); got != want {
			t.Errorf("graph %d (%v): poss=%v colorable=%v", i, g, got, want)
		}
	}
}
