package reduce

import (
	"pw/internal/algebra"
	"pw/internal/graph"
	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/table"
	"pw/internal/value"
)

// MembViewInstance bundles a view-membership question: is I0 ∈ q(rep(D))?
type MembViewInstance struct {
	I0 *rel.Instance
	Q  query.Query
	D  *table.Database
}

// MembViewFrom3Col is the Theorem 3.1(4) reduction (Fig. 4(d)): a positive
// existential query on a vector of Codd-tables whose membership question
// decides 3-colorability.
//
// T(R) has arity 5 with one row (b_j, x_j, c_j, y_j, j) per oriented edge
// j = (b_j, c_j): columns 2 and 4 hold the (unknown) colors of the
// endpoints in that edge's row. T(S) lists the valid color pairs
// {(i,j) : i ≠ j ∈ {1,2,3}}. The instance asks that
//
//	q1 — the vertex/edge/edge triples where a vertex is assigned the same
//	     color in both edges — equal R0 = all triples (a, j, k) with a an
//	     endpoint of both j and k (color consistency), and
//	q2 — the edges whose two endpoint colors form a valid pair — equal
//	     S0 = all edge ids (properness).
//
// G is 3-colorable iff I0 = (R0, S0) ∈ q(rep(T)).
func MembViewFrom3Col(g *graph.G) MembViewInstance {
	r := table.New("R", 5)
	for j, e := range g.Edges {
		r.AddTuple(kint(e.A+1), vcolor("x", j), kint(e.B+1), vcolor("y", j), kint(j+1))
	}
	s := table.New("S", 2)
	for i := 1; i <= 3; i++ {
		for j := 1; j <= 3; j++ {
			if i != j {
				s.AddTuple(kint(i), kint(j))
			}
		}
	}

	i0 := rel.NewInstance()
	r0 := i0.EnsureRelation("R0", 3)
	for j, ej := range g.Edges {
		for k, ek := range g.Edges {
			for _, a := range []int{ej.A, ej.B} {
				if a == ek.A || a == ek.B {
					r0.AddRow(sint(a+1), sint(j+1), sint(k+1))
				}
			}
		}
	}
	s0 := i0.EnsureRelation("S0", 1)
	for j := range g.Edges {
		s0.AddRow(sint(j + 1))
	}

	// Occ(x, y, e): vertex x occurs with color y in edge e.
	occ := algebra.Union{
		L: algebra.Project{E: algebra.Scan("R", "x", "y", "v", "w", "e"), Cols: []string{"x", "y", "e"}},
		R: algebra.Project{E: algebra.Scan("R", "v", "w", "x", "y", "e"), Cols: []string{"x", "y", "e"}},
	}
	occ2 := algebra.Rename{E: occ, From: []string{"e"}, To: []string{"e2"}}
	q1 := algebra.Project{E: algebra.Join{L: occ, R: occ2}, Cols: []string{"x", "e", "e2"}}
	q2 := algebra.Project{
		E:    algebra.Join{L: algebra.Scan("R", "n1", "c1", "n2", "c2", "e"), R: algebra.Scan("S", "c1", "c2")},
		Cols: []string{"e"},
	}
	q := query.NewAlgebra("fig4d",
		query.Out{Name: "R0", Expr: q1},
		query.Out{Name: "S0", Expr: q2},
	)
	return MembViewInstance{I0: i0, Q: q, D: table.DB(r, s)}
}

// vcolor names the per-edge color variables of MembViewFrom3Col.
func vcolor(prefix string, edge int) value.Value {
	return value.Var(prefix + sint(edge+1))
}
