package reduce

import (
	"pw/internal/algebra"
	"pw/internal/cond"
	"pw/internal/graph"
	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/sat"
	"pw/internal/table"
	"pw/internal/value"
)

// UniqInstance bundles a uniqueness question: is Q0(rep(D0)) = {I}?
type UniqInstance struct {
	Q0 query.Query
	D0 *table.Database
	I  *rel.Instance
}

// UniqCTableFromDNF is the Theorem 3.2(3) reduction: a c-table T0 with one
// unary row (1) per DNF clause, the row's local condition encoding the
// clause over shared variables u_j ((u_j = 1) for a positive literal x_j,
// (u_j ≠ 1) for ¬x_j). The global condition is true and I = {(1)}.
//
// H is a 3DNF tautology iff I is the unique representative of rep(T0):
// a falsifying assignment makes every local condition fail, producing the
// empty instance as a second representative.
func UniqCTableFromDNF(f sat.DNF) UniqInstance {
	t := table.New("T", 1)
	for _, c := range f.Clauses {
		local := make(cond.Conjunction, 0, 3)
		for _, l := range c {
			u := value.Var("u" + sint(l.Var))
			if l.Neg {
				local = append(local, cond.NeqAtom(u, kint(1)))
			} else {
				local = append(local, cond.EqAtom(u, kint(1)))
			}
		}
		t.Add(table.Row{Values: value.NewTuple(kint(1)), Cond: local})
	}
	i := rel.NewInstance()
	i.EnsureRelation("T", 1).AddRow("1")
	return UniqInstance{Q0: query.Identity{}, D0: table.DB(t), I: i}
}

// UniqViewFromGraph is the Theorem 3.2(4) reduction (Fig. 6): a Codd-table
//
//	T0 = {(1,a,b) : (a,b) ∈ E} ∪ {(0,a,x_a) : a ∈ V}
//
// and the positive-existential-with-≠ query
//
//	q0 = {1 | ∃x,y,z[R(1,x,y) ∧ R(0,x,z) ∧ R(0,y,z)]
//	        ∨ ∃y,z[R(0,y,z) ∧ z≠1 ∧ z≠2 ∧ z≠3]}
//
// (the first disjunct fires when two adjacent vertices share a color, the
// second when some color is outside {1,2,3}). G is NOT 3-colorable iff
// {(1)} is the unique instance of rep(q0(T0)).
//
// The construction requires a non-empty edge set (the paper assumes G is
// not the empty graph): both branches emit the constant by projecting the
// first column of a (1,a,b) row.
func UniqViewFromGraph(g *graph.G) UniqInstance {
	t0 := table.New("R", 3)
	for _, e := range g.Edges {
		t0.AddTuple(kint(1), kint(e.A+1), kint(e.B+1))
	}
	for a := 0; a < g.N; a++ {
		t0.AddTuple(kint(0), kint(a+1), vx(a))
	}

	// Branch 1: adjacent vertices x,y share the color z.
	edges := algebra.Where(algebra.Scan("R", "f", "x", "y"), algebra.EqP(algebra.Col("f"), algebra.Lit("1")))
	colX := algebra.Where(algebra.Scan("R", "g", "x", "z"), algebra.EqP(algebra.Col("g"), algebra.Lit("0")))
	colY := algebra.Where(algebra.Scan("R", "h", "y", "z"), algebra.EqP(algebra.Col("h"), algebra.Lit("0")))
	branch1 := algebra.Project{
		E:    algebra.JoinAll(edges, colX, colY),
		Cols: []string{"f"},
	}
	// Branch 2: some vertex's color z escapes {1,2,3}; the marker constant
	// 1 again comes from projecting an edge row's first column.
	badColor := algebra.Where(algebra.Scan("R", "g", "y", "z"),
		algebra.EqP(algebra.Col("g"), algebra.Lit("0")),
		algebra.NeqP(algebra.Col("z"), algebra.Lit("1")),
		algebra.NeqP(algebra.Col("z"), algebra.Lit("2")),
		algebra.NeqP(algebra.Col("z"), algebra.Lit("3")),
	)
	marker := algebra.Project{
		E:    algebra.Rename{E: edges, From: []string{"x", "y"}, To: []string{"u", "w"}},
		Cols: []string{"f"},
	}
	branch2 := algebra.Project{
		E:    algebra.Join{L: marker, R: badColor},
		Cols: []string{"f"},
	}
	q0 := query.NewAlgebra("fig6",
		query.Out{Name: "Q", Expr: algebra.Union{L: branch1, R: branch2}})

	i := rel.NewInstance()
	i.EnsureRelation("Q", 1).AddRow("1")
	return UniqInstance{Q0: q0, D0: table.DB(t0), I: i}
}
