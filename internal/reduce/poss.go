package reduce

import (
	"fmt"

	"pw/internal/cond"
	"pw/internal/datalog"
	"pw/internal/fo"
	"pw/internal/graph"
	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/sat"
	"pw/internal/table"
	"pw/internal/value"
)

// PossInstance bundles a possibility question: ∃I ∈ Q(rep(D)) ⊇ P?
type PossInstance struct {
	P *rel.Instance
	Q query.Query
	D *table.Database
}

// PossETableFrom3SAT is the Theorem 5.1(2) reduction (Fig. 11(b)): an
// e-table of arity 3 with, per variable j, the complementary rows
// (j, u_j, y_j) and (j, y_j, u_j), and per clause i the member rows
// (m+i, m+i, u_j) for x_j ∈ cᵢ and (m+i, m+i, y_j) for ¬x_j ∈ cᵢ (m is
// the variable count). The fact set asks each variable row to realise
// both (j,0,1) and (j,1,0) — forcing {u_j, y_j} = {0,1} — and each clause
// to realise (m+i, m+i, 1): a satisfied member. H is satisfiable iff P is
// possible.
func PossETableFrom3SAT(f sat.CNF) PossInstance {
	m := f.NVars
	t := table.New("T", 3)
	u := func(j int) value.Value { return vn("u", j+1) }
	y := func(j int) value.Value { return vn("y", j+1) }
	for j := 0; j < m; j++ {
		t.AddTuple(kint(j+1), u(j), y(j))
		t.AddTuple(kint(j+1), y(j), u(j))
	}
	for i, c := range f.Clauses {
		id := kint(m + i + 1)
		for _, l := range c {
			if l.Neg {
				t.AddTuple(id, id, y(l.Var))
			} else {
				t.AddTuple(id, id, u(l.Var))
			}
		}
	}
	p := rel.NewInstance()
	pr := p.EnsureRelation("T", 3)
	for j := 1; j <= m; j++ {
		pr.AddRow(sint(j), "0", "1")
		pr.AddRow(sint(j), "1", "0")
	}
	for i := range f.Clauses {
		id := sint(m + i + 1)
		pr.AddRow(id, id, "1")
	}
	return PossInstance{P: p, Q: query.Identity{}, D: table.DB(t)}
}

// PossITableFrom3SAT is the Theorem 5.1(3) reduction (Fig. 11(a)): an
// i-table of arity 2 with one row (i, x_{i,k}) per member position and
// global inequalities between complementary positions. The fact set asks
// each clause to realise (i, 1): H is satisfiable iff P is possible.
func PossITableFrom3SAT(f sat.CNF) PossInstance {
	t := table.New("T", 2)
	xik := func(i, k int) value.Value { return value.Var(fmt.Sprintf("x%d_%d", i+1, k+1)) }
	for i := range f.Clauses {
		for k := 0; k < 3; k++ {
			t.AddTuple(kint(i+1), xik(i, k))
		}
	}
	for i, ci := range f.Clauses {
		for k, lk := range ci {
			for j, cj := range f.Clauses {
				for l, ll := range cj {
					if lk.Var == ll.Var && !lk.Neg && ll.Neg {
						t.Global = append(t.Global, cond.NeqAtom(xik(i, k), xik(j, l)))
					}
				}
			}
		}
	}
	p := rel.NewInstance()
	pr := p.EnsureRelation("T", 2)
	for i := range f.Clauses {
		pr.AddRow(sint(i+1), "1")
	}
	return PossInstance{P: p, Q: query.Identity{}, D: table.DB(t)}
}

// PossViewFrom3Col is the Theorem 5.1(4) adaptation of the Fig. 4(d)
// construction: G is 3-colorable iff some world of q(rep(T)) contains I0
// (possibility instead of exact membership; the paper notes the same
// construction works).
func PossViewFrom3Col(g *graph.G) PossInstance {
	mv := MembViewFrom3Col(g)
	return PossInstance{P: mv.I0, Q: mv.Q, D: mv.D}
}

// dnfOccurrenceTable is the arity-4 Codd-table shared by the Theorem
// 5.2(2) and 5.3(2) constructions: one row
//
//	(clause i, z_{i,k}, variable j, sign s)
//
// per literal occurrence, with a distinct variable z_{i,k} per occurrence.
// A valuation σ marks occurrence (i,k) "satisfied" by σ(z_{i,k}) = 1.
//
// The paper's rendering of this table and its query is typographically
// corrupted in the available text; this reconstruction keeps the theorem
// statements intact: the variable-identity column j lets a first-order
// query check that the per-occurrence marks are mutually consistent (same
// variable, same sign ⇒ same mark; opposite signs ⇒ opposite marks), i.e.
// that σ encodes a truth assignment.
func dnfOccurrenceTable(f sat.DNF) *table.Database {
	t := table.New("R", 4)
	for i, c := range f.Clauses {
		for k, l := range c {
			sign := 1
			if l.Neg {
				sign = 0
			}
			t.AddTuple(kint(i+1), value.Var(fmt.Sprintf("z%d_%d", i+1, k+1)),
				kint(l.Var+1), kint(sign))
		}
	}
	return table.DB(t)
}

// dnfStatusFormula builds ψ = BAD ∨ SAT over the occurrence table:
//
//	BAD — σ does not encode a truth assignment: some mark outside {0,1},
//	      or two occurrences of one variable marked inconsistently;
//	SAT — some clause has every occurrence marked satisfied (the DNF
//	      clause is true).
//
// For any σ, 1 ∈ q'(σT) with q' = {1 | ψ} iff σ is not an assignment or
// its assignment satisfies H. Hence H is a tautology iff 1 is certain in
// q'(rep(T)), and H is a non-tautology iff 1 is possible in {1 | ¬ψ}.
func dnfStatusFormula() fo.Formula {
	va := value.Var
	notBool := fo.Exists{Vars: []string{"c", "m", "j", "s"}, F: fo.And{
		fo.At("R", va("c"), va("m"), va("j"), va("s")),
		fo.Neq(va("m"), value.Const("0")),
		fo.Neq(va("m"), value.Const("1")),
	}}
	inconsistent := fo.Exists{Vars: []string{"c", "m", "j", "s", "c2", "m2", "s2"}, F: fo.And{
		fo.At("R", va("c"), va("m"), va("j"), va("s")),
		fo.At("R", va("c2"), va("m2"), va("j"), va("s2")),
		fo.Or{
			fo.And{fo.Equal(va("s"), va("s2")), fo.Neq(va("m"), va("m2"))},
			fo.And{fo.Not{F: fo.Equal(va("s"), va("s2"))}, fo.Equal(va("m"), va("m2"))},
		},
	}}
	clauseSat := fo.Exists{Vars: []string{"c", "m", "j", "s"}, F: fo.And{
		fo.At("R", va("c"), va("m"), va("j"), va("s")),
		fo.Not{F: fo.Exists{Vars: []string{"m2", "j2", "s2"}, F: fo.And{
			fo.At("R", va("c"), va("m2"), va("j2"), va("s2")),
			fo.Neq(va("m2"), value.Const("1")),
		}}},
	}}
	return fo.Or{notBool, inconsistent, clauseSat}
}

// PossFOFromDNF is the Theorem 5.2(2) reduction: a first-order query q
// with POSS(1, q) NP-complete on Codd-tables. The fact (1) is possible in
// q(rep(T)) iff H is NOT a tautology.
func PossFOFromDNF(f sat.DNF) PossInstance {
	q := query.NewFO("thm52-2", query.FOOut{Name: "Q", Q: fo.Query{
		Head: []string{"w"},
		Body: fo.And{fo.Equal(value.Var("w"), value.Const("1")), fo.Not{F: dnfStatusFormula()}},
	}})
	p := rel.NewInstance()
	p.EnsureRelation("Q", 1).AddRow("1")
	return PossInstance{P: p, Q: q, D: dnfOccurrenceTable(f)}
}

// CertInstance bundles a certainty question: ∀I ∈ Q(rep(D)): P ⊆ I?
type CertInstance struct {
	P *rel.Instance
	Q query.Query
	D *table.Database
}

// CertFOFromDNF is the Theorem 5.3(2) reduction: a first-order query q'
// with CERT(1, q') coNP-complete on Codd-tables. The fact (1) is certain
// in q'(rep(T)) iff H is a tautology.
func CertFOFromDNF(f sat.DNF) CertInstance {
	q := query.NewFO("thm53-2", query.FOOut{Name: "Q", Q: fo.Query{
		Head: []string{"w"},
		Body: fo.And{fo.Equal(value.Var("w"), value.Const("1")), dnfStatusFormula()},
	}})
	p := rel.NewInstance()
	p.EnsureRelation("Q", 1).AddRow("1")
	return CertInstance{P: p, Q: q, D: dnfOccurrenceTable(f)}
}

// CertCTableFromDNF is the Theorem 5.3(3) reduction (same construction as
// Theorem 3.2(3)): on the clause-conditioned c-table, the fact (1) is
// certain iff H is a tautology.
func CertCTableFromDNF(f sat.DNF) CertInstance {
	u := UniqCTableFromDNF(f)
	return CertInstance{P: u.I, Q: query.Identity{}, D: u.D0}
}

// PossDatalogFrom3SAT is the Theorem 5.2(3) reduction (Fig. 12): a DATALOG
// query q with POSS(1, q) NP-complete on Codd-tables. The gadget graph has
// per-variable constants t_i, f_i, a_i, b_i, per-clause constants h_j, the
// root a and the target 1; the nulls x_i choose t_i or f_i. The derivation
//
//	Q(x) :- R0(x).
//	Q(x) :- Q(y), Q(z), R1(y,x), R2(z,x).
//
// reaches 1 iff every b_i (one per variable: a committed choice) and every
// h_j (one per clause: a satisfied literal) is derivable: H is satisfiable
// iff the fact Q(1) is possible.
func PossDatalogFrom3SAT(f sat.CNF) PossInstance {
	n := f.NVars
	m := len(f.Clauses)
	tC := func(i int) string { return "t" + sint(i) }
	fC := func(i int) string { return "f" + sint(i) }
	aC := func(i int) string { return "a" + sint(i) }
	bC := func(i int) string { return "b" + sint(i) }
	hC := func(j int) string { return "h" + sint(j) }
	xV := func(i int) value.Value { return vn("x", i) }
	kc := value.Const

	r0 := table.New("R0", 1)
	r0.AddTuple(kc("a"))
	r1 := table.New("R1", 2)
	r2 := table.New("R2", 2)
	for i := 1; i <= n; i++ {
		r1.AddTuple(kc("a"), kc(tC(i)))
		r1.AddTuple(kc("a"), kc(fC(i)))
		r1.AddTuple(kc("a"), kc(aC(i)))
		r2.AddTuple(kc(tC(i)), kc(aC(i)))
		r2.AddTuple(kc(fC(i)), kc(aC(i)))
		r2.AddTuple(kc(aC(i)), kc(bC(i)))
	}
	r1.AddTuple(kc("a"), kc(bC(1)))
	for i := 1; i < n; i++ {
		r1.AddTuple(kc(bC(i)), kc(bC(i+1)))
	}
	r1.AddTuple(kc(bC(n)), kc("1"))
	r2.AddTuple(kc("a"), xV(1))
	for i := 1; i < n; i++ {
		r2.AddTuple(kc(aC(i)), xV(i+1))
	}
	r2.AddTuple(kc("a"), kc(hC(1)))
	for j := 1; j < m; j++ {
		r2.AddTuple(kc(hC(j)), kc(hC(j+1)))
	}
	r2.AddTuple(kc(hC(m)), kc("1"))
	for j, c := range f.Clauses {
		for _, l := range c {
			if l.Neg {
				r1.AddTuple(kc(fC(l.Var+1)), kc(hC(j+1)))
			} else {
				r1.AddTuple(kc(tC(l.Var+1)), kc(hC(j+1)))
			}
		}
	}

	prog := datalog.Program{Rules: []datalog.Rule{
		datalog.R(datalog.At("Q", value.Var("qx")), datalog.At("R0", value.Var("qx"))),
		datalog.R(datalog.At("Q", value.Var("qx")),
			datalog.At("Q", value.Var("qy")), datalog.At("Q", value.Var("qz")),
			datalog.At("R1", value.Var("qy"), value.Var("qx")),
			datalog.At("R2", value.Var("qz"), value.Var("qx"))),
	}}
	q := query.NewDatalog("fig12", prog, "Q")

	p := rel.NewInstance()
	p.EnsureRelation("Q", 1).AddRow("1")
	return PossInstance{P: p, Q: q, D: table.DB(r0, r1, r2)}
}
