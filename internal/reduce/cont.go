package reduce

import (
	"fmt"

	"pw/internal/algebra"
	"pw/internal/cond"
	"pw/internal/query"
	"pw/internal/sat"
	"pw/internal/table"
	"pw/internal/value"
)

// ContInstance bundles a containment question: is Q0(rep(D0)) ⊆ Q(rep(D))?
type ContInstance struct {
	Q0 query.Query
	D0 *table.Database
	Q  query.Query
	D  *table.Database
}

// vn builds the named indexed variable, e.g. vn("u", 3) = ?u3.
func vn(prefix string, i int) value.Value {
	return value.Var(fmt.Sprintf("%s%d", prefix, i))
}

// zkj is the per-clause-member variable z_{k,j} of the ∀∃ reductions.
func zkj(k, j int) value.Value {
	return value.Var(fmt.Sprintf("z%d_%d", k, j))
}

// bitRows appends the seven rows (a,b,c,0) with a,b,c ∈ {0,1}, a+b+c ≠ 0.
func bitRows(t *table.Table) {
	for a := 0; a <= 1; a++ {
		for b := 0; b <= 1; b++ {
			for c := 0; c <= 1; c++ {
				if a+b+c != 0 {
					t.AddTuple(kint(a), kint(b), kint(c), kint(0))
				}
			}
		}
	}
}

// ContITableFromForallExists is the Theorem 4.2(1) reduction (Fig. 7):
// containment of a Codd-table in an i-table is Π₂ᵖ-complete. For the
// ∀∃3CNF instance with universal variables x_1..x_n (q.NX) the tables of
// arity 4 are
//
//	T0 = {(0,z_i,i,i)} ∪ {(1,0,i,i)} ∪ {(a,b,c,0) : a+b+c≠0}
//	T  = {(u_i,w_i,i,i)} ∪ {(v_i,y_i,i,i)} ∪ {(a,b,c,0) : a+b+c≠0}
//	     ∪ {(z_{k,1},z_{k,2},z_{k,3},0) : clause k}
//
// with the global inequalities w_i ≠ 5, y_i ≠ 6, the complementary-literal
// constraints between z variables, and z_{k,j} ≠ v_l / ≠ u_l for positive /
// negative universal members. σ0(z_i) = 5 encodes x_i true, 6 false, and
// the answer to the ∀∃ question is yes iff rep(T0) ⊆ rep(T, φT).
func ContITableFromForallExists(q sat.ForallExists) ContInstance {
	n := q.NX
	t0 := table.New("T", 4)
	for i := 1; i <= n; i++ {
		t0.AddTuple(kint(0), vn("zz", i), kint(i), kint(i))
		t0.AddTuple(kint(1), kint(0), kint(i), kint(i))
	}
	bitRows(t0)

	t := table.New("T", 4)
	for i := 1; i <= n; i++ {
		t.AddTuple(vn("u", i), vn("w", i), kint(i), kint(i))
		t.AddTuple(vn("v", i), vn("y", i), kint(i), kint(i))
		t.Global = append(t.Global,
			cond.NeqAtom(vn("w", i), kint(5)),
			cond.NeqAtom(vn("y", i), kint(6)),
		)
	}
	bitRows(t)
	for k, c := range q.Clauses {
		t.AddTuple(zkj(k+1, 1), zkj(k+1, 2), zkj(k+1, 3), kint(0))
		_ = c
	}
	// Complementary members across clauses: z_{k,j} ≠ z_{k',j'} whenever
	// position j of clause k holds x and position j' of clause k' holds ¬x.
	for k, ck := range q.Clauses {
		for j, lj := range ck {
			for k2, ck2 := range q.Clauses {
				for j2, lj2 := range ck2 {
					if lj.Var == lj2.Var && !lj.Neg && lj2.Neg {
						t.Global = append(t.Global,
							cond.NeqAtom(zkj(k+1, j+1), zkj(k2+1, j2+1)))
					}
				}
			}
			// Universal members link to the u/v encodings (1-based
			// universal variables are Var < NX).
			if lj.Var < q.NX {
				l := lj.Var + 1
				if lj.Neg {
					t.Global = append(t.Global, cond.NeqAtom(zkj(k+1, j+1), vn("u", l)))
				} else {
					t.Global = append(t.Global, cond.NeqAtom(zkj(k+1, j+1), vn("v", l)))
				}
			}
		}
	}
	return ContInstance{
		Q0: query.Identity{}, D0: table.DB(t0),
		Q: query.Identity{}, D: table.DB(t),
	}
}

// ContViewFromForallExists is the Theorem 4.2(2) reduction (Fig. 8):
// containment of a Codd-table in a positive existential view of
// Codd-tables is Π₂ᵖ-complete.
//
//	T0(Ro) = {(i, v_i)}            T(R) = {(i, u_i)}
//	T0(So) = {(k)}                 T(S) = {(k, z_{k,j}, i, 1|0)}
//
// q = (q1, q2) with q1 the identity on R and q2 emitting each clause k
// with a satisfied member, plus the marker 0 whenever the satisfied
// members are inconsistent with each other or with the u assignment.
// σ0(v_i) = 1 encodes x_i true; the ∀∃ answer is yes iff
// rep(T0) ⊆ q(rep(T)).
func ContViewFromForallExists(q sat.ForallExists) ContInstance {
	n := q.NX
	t0r := table.New("Ro", 2)
	for i := 1; i <= n; i++ {
		t0r.AddTuple(kint(i), vn("v", i))
	}
	t0s := table.New("So", 1)
	for k := range q.Clauses {
		t0s.AddTuple(kint(k + 1))
	}

	tr := table.New("R", 2)
	for i := 1; i <= n; i++ {
		tr.AddTuple(kint(i), vn("u", i))
	}
	ts := table.New("S", 4)
	for k, c := range q.Clauses {
		for j, l := range c {
			sign := 1
			if l.Neg {
				sign = 0
			}
			ts.AddTuple(kint(k+1), zkj(k+1, j+1), kint(l.Var+1), kint(sign))
		}
	}

	// q1: identity on R.
	q1 := algebra.Scan("R", "i", "u")
	// q2, four branches over S(k, m, i, s) (k clause, m member-satisfied
	// flag, i variable, s sign) and R(i, u):
	sSat := func(cols ...string) algebra.Expr { // σ[m=1](S) with given col names
		return algebra.Where(algebra.Scan("S", cols...),
			algebra.EqP(algebra.Col(cols[1]), algebra.Lit("1")))
	}
	// (1) clauses with a satisfied member.
	b1 := algebra.Project{E: sSat("k", "m", "i", "s"), Cols: []string{"k"}}
	// (2) the same variable i has both a satisfied negative occurrence
	// (s=0) and a satisfied positive occurrence (s2=1): emit 0 by
	// projecting the s column of the negative side.
	neg := algebra.Where(sSat("k", "m", "i", "s"), algebra.EqP(algebra.Col("s"), algebra.Lit("0")))
	pos := algebra.Where(sSat("k2", "m2", "i", "s2"), algebra.EqP(algebra.Col("s2"), algebra.Lit("1")))
	b2 := algebra.Project{E: algebra.Join{L: neg, R: pos}, Cols: []string{"s"}}
	// (3) u_i = 0 (x_i false) but a positive occurrence of i is satisfied:
	// emit 0 by projecting the u column.
	rFalse := algebra.Where(algebra.Scan("R", "i", "u"), algebra.EqP(algebra.Col("u"), algebra.Lit("0")))
	b3 := algebra.Project{E: algebra.Join{L: rFalse, R: pos}, Cols: []string{"u"}}
	// (4) u_i = 1 but a negative occurrence of i is satisfied: emit 0 by
	// projecting the s column of the negative side.
	rTrue := algebra.Where(algebra.Scan("R", "i", "u"), algebra.EqP(algebra.Col("u"), algebra.Lit("1")))
	b4 := algebra.Project{E: algebra.Join{L: rTrue, R: neg}, Cols: []string{"s"}}

	rename := func(e algebra.Expr) algebra.Expr {
		return algebra.Rename{E: e, From: firstCol(e), To: []string{"out"}}
	}
	q2 := algebra.UnionAll(rename(b1), rename(b2), rename(b3), rename(b4))
	qq := query.NewAlgebra("fig8",
		query.Out{Name: "Ro", Expr: q1},
		query.Out{Name: "So", Expr: q2},
	)
	return ContInstance{
		Q0: query.Identity{}, D0: table.DB(t0r, t0s),
		Q: qq, D: table.DB(tr, ts),
	}
}

// firstCol returns the (single) output column of e for renaming.
func firstCol(e algebra.Expr) []string {
	cols, err := e.Schema()
	if err != nil || len(cols) != 1 {
		panic(fmt.Sprintf("reduce: expected single column, got %v (%v)", cols, err))
	}
	return cols
}

// ContQoFromDNF is the Theorem 4.2(4) reduction (Fig. 9): containment of a
// positive existential view of Codd-tables in a Codd-table is
// coNP-complete.
//
//	T0(Ro) = {(i,j,1) : x_j ∈ clause i} ∪ {(i,j,0) : ¬x_j ∈ clause i}
//	T0(So) = {(j, u_j)}
//	q0     = {x | ∃y,z (Ro(x,y,z) ∧ So(y,z)) ∨ x = 0}
//	T      = {z_1, …, z_p} (p = number of clauses, distinct variables)
//
// σ0(u_j) = 0 encodes x_j true. q0 emits clause i iff some member of i is
// falsified, plus the marker 0; a falsifying assignment makes q0 emit all
// p clauses plus the marker — p+1 distinct values, more than the p-row
// table T can produce. H is a tautology iff q0(rep(T0)) ⊆ rep(T).
func ContQoFromDNF(f sat.DNF) ContInstance {
	t0r := table.New("Ro", 3)
	for i, c := range f.Clauses {
		for _, l := range c {
			sign := 1
			if l.Neg {
				sign = 0
			}
			t0r.AddTuple(kint(i+1), kint(l.Var+1), kint(sign))
		}
	}
	t0s := table.New("So", 2)
	for j := 0; j < f.NVars; j++ {
		t0s.AddTuple(kint(j+1), vn("u", j+1))
	}
	falsified := algebra.Project{
		E:    algebra.Join{L: algebra.Scan("Ro", "x", "y", "z"), R: algebra.Scan("So", "y", "z")},
		Cols: []string{"x"},
	}
	q0 := query.NewAlgebra("fig9", query.Out{Name: "Q", Expr: algebra.Union{
		L: falsified,
		R: algebra.Values("x", "0"),
	}})

	t := table.New("Q", 1)
	for k := range f.Clauses {
		t.AddTuple(vn("zq", k+1))
	}
	return ContInstance{
		Q0: q0, D0: table.DB(t0r, t0s),
		Q: query.Identity{}, D: table.DB(t),
	}
}

// ContQoETableFromForallExists is the Theorem 4.2(5) reduction (Fig. 10):
// containment of a positive existential view of Codd-tables in an e-table
// is Π₂ᵖ-complete.
//
//	T0(Ro) = {(i,j,k) : i ∈ [1..p], j,k ∈ {0,1}}   (ground)
//	T0(So) = {(i, y_i, z_i) : i ∈ [1..n]}
//	q0 = (identity on Ro,
//	      {(x,1) | ∃y So(x,y,y)} ∪ {(x,0) | ∃y,z So(x,y,z)})
//	T(R) = {(i,1,0), (i,0,1)} ∪ {(i,u_j,1) : x_j ∈ cᵢ} ∪
//	       {(i,u_j,0) : ¬x_j ∈ cᵢ} ∪ {(i,zz_i,zz_i)}
//	T(S) = {(i,u_i), (i,0) : i ∈ [1..n]}
//
// σ0(y_i) = σ0(z_i) encodes x_i true. The e-table T shares the u variables
// between R and S (the incorporated-equalities idiom for vectors). The ∀∃
// answer is yes iff q0(rep(T0)) ⊆ rep(T).
func ContQoETableFromForallExists(q sat.ForallExists) ContInstance {
	p := len(q.Clauses)
	n := q.NX
	t0r := table.New("R", 3)
	for i := 1; i <= p; i++ {
		for j := 0; j <= 1; j++ {
			for k := 0; k <= 1; k++ {
				t0r.AddTuple(kint(i), kint(j), kint(k))
			}
		}
	}
	t0s := table.New("S", 3)
	for i := 1; i <= n; i++ {
		t0s.AddTuple(kint(i), vn("y", i), vn("zz", i))
	}
	q01 := algebra.Scan("R", "a", "b", "c")
	eqBranch := algebra.Project{
		E: algebra.Join{
			L: algebra.Where(algebra.Scan("S", "x", "y", "z"), algebra.EqP(algebra.Col("y"), algebra.Col("z"))),
			R: algebra.Values("w", "1"),
		},
		Cols: []string{"x", "w"},
	}
	anyBranch := algebra.Project{
		E:    algebra.Join{L: algebra.Scan("S", "x", "y", "z"), R: algebra.Values("w", "0")},
		Cols: []string{"x", "w"},
	}
	q0 := query.NewAlgebra("fig10",
		query.Out{Name: "R", Expr: q01},
		query.Out{Name: "S", Expr: algebra.Union{L: eqBranch, R: anyBranch}},
	)

	tr := table.New("R", 3)
	for k, c := range q.Clauses {
		i := k + 1
		tr.AddTuple(kint(i), kint(1), kint(0))
		tr.AddTuple(kint(i), kint(0), kint(1))
		for _, l := range c {
			sign := 1
			if l.Neg {
				sign = 0
			}
			tr.AddTuple(kint(i), vn("u", l.Var+1), kint(sign))
		}
		tr.AddTuple(kint(i), vn("zt", i), vn("zt", i))
	}
	ts := table.New("S", 2)
	for i := 1; i <= n; i++ {
		ts.AddTuple(kint(i), vn("u", i))
		ts.AddTuple(kint(i), kint(0))
	}
	return ContInstance{
		Q0: q0, D0: table.DB(t0r, t0s),
		Q: query.Identity{}, D: table.DB(tr, ts),
	}
}

// ContCTableFromForallExists is the Theorem 4.2(3) variant: containment of
// a c-table in an e-table. Following the paper's proof, it applies the
// Theorem 4.2(5) query q0 to its Codd-table T0 with the lifted algebra,
// producing an equivalent c-table subset side (polynomial, by [10]).
func ContCTableFromForallExists(q sat.ForallExists) (ContInstance, error) {
	base := ContQoETableFromForallExists(q)
	l, ok := query.AsLiftable(base.Q0)
	if !ok {
		return ContInstance{}, fmt.Errorf("reduce: fig10 query must be liftable")
	}
	lifted, err := l.EvalLifted(base.D0)
	if err != nil {
		return ContInstance{}, err
	}
	return ContInstance{
		Q0: query.Identity{}, D0: lifted,
		Q: base.Q, D: base.D,
	}, nil
}
