// Package reduce implements every hardness reduction of the paper
// (Figs. 4–12). Each construction maps a source problem instance (graph
// 3-colorability, 3CNF satisfiability, 3DNF tautology, ∀∃3CNF) to an
// instance of one of the five decision problems, exactly following the
// proofs of Theorems 3.1, 3.2, 4.2, 5.1, 5.2 and 5.3.
//
// The reductions serve three purposes in this repository:
//
//  1. they are the workload generators for the NP/coNP/Π₂ᵖ cells of the
//     Fig. 2 benchmarks;
//  2. cross-validating "source answer == target answer" on small inputs
//     simultaneously tests the reduction and the decision procedures;
//  3. they demonstrate, run live, the paper's headline qualitative claims
//     (e.g. Theorem 4.2(1): the Π₂ᵖ ceiling is already reached by a
//     Codd-table contained in an i-table).
//
// Naming: MembETableFrom3Col is "the MEMB instance on an e-table built
// from a 3-colorability instance", and so on.
package reduce

import (
	"fmt"

	"pw/internal/cond"
	"pw/internal/graph"
	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/table"
	"pw/internal/value"
)

// vx returns the per-vertex variable x_a of the colorability reductions.
func vx(a int) value.Value { return value.Var(fmt.Sprintf("x%d", a)) }

// kint returns the integer constant i.
func kint(i int) value.Value { return value.Const(fmt.Sprintf("%d", i)) }

// sint renders i as the constant name.
func sint(i int) string { return fmt.Sprintf("%d", i) }

// MembInstance bundles a membership question: is I0 ∈ rep(D)?
type MembInstance struct {
	I0 *rel.Instance
	D  *table.Database
}

// Q0 returns the membership query: the identity, for the direct (view-free)
// reductions.
func (m MembInstance) Q0() query.Query { return query.Identity{} }

// MembETableFrom3Col is the Theorem 3.1(2) reduction (Fig. 4(c)): the
// e-table T = {ij : i≠j ∈ {1,2,3}} ∪ {x_a x_b : (a,b) ∈ E} and the
// instance I0 = {ij : i≠j}. G is 3-colorable iff I0 ∈ rep(T). Variables
// repeat across edge rows, making the table an e-table.
func MembETableFrom3Col(g *graph.G) MembInstance {
	t := table.New("T", 2)
	for i := 1; i <= 3; i++ {
		for j := 1; j <= 3; j++ {
			if i != j {
				t.AddTuple(kint(i), kint(j))
			}
		}
	}
	for _, e := range g.Edges {
		t.AddTuple(vx(e.A), vx(e.B))
	}
	i0 := rel.NewInstance()
	r := i0.EnsureRelation("T", 2)
	for i := 1; i <= 3; i++ {
		for j := 1; j <= 3; j++ {
			if i != j {
				r.AddRow(sint(i), sint(j))
			}
		}
	}
	return MembInstance{I0: i0, D: table.DB(t)}
}

// MembITableFrom3Col is the Theorem 3.1(3) reduction (Fig. 4(b)): the
// i-table T = {1,2,3} ∪ {x_a : a ∈ V} with global condition
// {x_a ≠ x_b : (a,b) ∈ E}, and I0 = {1,2,3}. G is 3-colorable iff
// I0 ∈ rep(T, φT).
func MembITableFrom3Col(g *graph.G) MembInstance {
	t := table.New("T", 1)
	for i := 1; i <= 3; i++ {
		t.AddTuple(kint(i))
	}
	for a := 0; a < g.N; a++ {
		t.AddTuple(vx(a))
	}
	for _, e := range g.Edges {
		t.Global = append(t.Global, cond.NeqAtom(vx(e.A), vx(e.B)))
	}
	i0 := rel.NewInstance()
	r := i0.EnsureRelation("T", 1)
	for i := 1; i <= 3; i++ {
		r.AddRow(sint(i))
	}
	return MembInstance{I0: i0, D: table.DB(t)}
}
