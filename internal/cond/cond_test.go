package cond

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pw/internal/value"
)

func x() value.Value  { return value.Var("x") }
func y() value.Value  { return value.Var("y") }
func z() value.Value  { return value.Var("z") }
func c1() value.Value { return value.Const("1") }
func c2() value.Value { return value.Const("2") }

func TestAtomTrivial(t *testing.T) {
	cases := []struct {
		a            Atom
		wantT, wantF bool
	}{
		{EqAtom(c1(), c1()), true, false},
		{EqAtom(c1(), c2()), false, true},
		{NeqAtom(c1(), c2()), true, false},
		{NeqAtom(c1(), c1()), false, true},
		{EqAtom(x(), x()), true, false},
		{NeqAtom(x(), x()), false, true},
		{EqAtom(x(), y()), false, false},
		{EqAtom(x(), c1()), false, false},
		{NeqAtom(x(), c1()), false, false},
	}
	for _, tc := range cases {
		if tc.a.TriviallyTrue() != tc.wantT {
			t.Errorf("%s TriviallyTrue = %v, want %v", tc.a, tc.a.TriviallyTrue(), tc.wantT)
		}
		if tc.a.TriviallyFalse() != tc.wantF {
			t.Errorf("%s TriviallyFalse = %v, want %v", tc.a, tc.a.TriviallyFalse(), tc.wantF)
		}
	}
}

func TestNegateInvolution(t *testing.T) {
	a := EqAtom(x(), c1())
	if a.Negate().Negate() != a {
		t.Error("double negation must be identity")
	}
	if a.Negate().Op != Neq {
		t.Error("negation of = must be !=")
	}
}

func TestSatisfiableBasics(t *testing.T) {
	cases := []struct {
		c    Conjunction
		want bool
	}{
		{nil, true},
		{Conj(), true},
		{Conj(True()), true},
		{Conj(False()), false},
		{Conj(EqAtom(x(), c1())), true},
		{Conj(EqAtom(x(), c1()), EqAtom(x(), c2())), false},
		{Conj(EqAtom(x(), c1()), NeqAtom(x(), c1())), false},
		{Conj(EqAtom(x(), y()), EqAtom(y(), c1()), NeqAtom(x(), c1())), false},
		{Conj(EqAtom(x(), y()), EqAtom(y(), z()), NeqAtom(x(), z())), false},
		{Conj(EqAtom(x(), y()), NeqAtom(x(), z())), true},
		{Conj(NeqAtom(x(), y()), NeqAtom(y(), z()), NeqAtom(x(), z())), true},
		{Conj(EqAtom(x(), c1()), EqAtom(y(), c2()), NeqAtom(x(), y())), true},
		{Conj(EqAtom(x(), c1()), EqAtom(y(), c1()), NeqAtom(x(), y())), false},
		{Conj(NeqAtom(x(), x())), false},
	}
	for _, tc := range cases {
		if got := tc.c.Satisfiable(); got != tc.want {
			t.Errorf("Satisfiable(%s) = %v, want %v", tc.c, got, tc.want)
		}
	}
}

// brute checks satisfiability by enumerating all valuations of the
// variables over a domain of n+2 constants (enough: n variables can be
// pairwise distinct and avoid any single mentioned constant... we include
// all mentioned constants plus n fresh ones, which is complete).
func brute(c Conjunction) bool {
	seenV := map[string]bool{}
	vars := c.Vars(nil, seenV)
	seenC := map[string]bool{}
	consts := c.Consts(nil, seenC)
	for i := 0; i < len(vars); i++ {
		consts = append(consts, value.FreshNames("~q", len(vars))[i])
	}
	if len(vars) == 0 {
		for _, a := range c {
			if a.TriviallyFalse() {
				return false
			}
		}
		return true
	}
	assign := make(map[string]string)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(vars) {
			for _, a := range c {
				get := func(v value.Value) string {
					if v.IsConst() {
						return v.Name()
					}
					return assign[v.Name()]
				}
				l, r := get(a.L), get(a.R)
				if (a.Op == Eq) != (l == r) {
					return false
				}
			}
			return true
		}
		for _, cst := range consts {
			assign[vars[i]] = cst
			if rec(i + 1) {
				return true
			}
		}
		return false
	}
	return rec(0)
}

func randomConjunction(rng *rand.Rand) Conjunction {
	vals := []value.Value{x(), y(), z(), c1(), c2(), value.Var("w")}
	n := rng.Intn(6)
	c := make(Conjunction, 0, n)
	for i := 0; i < n; i++ {
		op := Eq
		if rng.Intn(2) == 0 {
			op = Neq
		}
		c = append(c, Atom{Op: op, L: vals[rng.Intn(len(vals))], R: vals[rng.Intn(len(vals))]})
	}
	return c
}

// TestSatisfiableMatchesBruteForce is the core property test: the
// union-find decision agrees with exhaustive valuation search.
func TestSatisfiableMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomConjunction(rng)
		return c.Satisfiable() == brute(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	c := Conj(EqAtom(y(), x()), EqAtom(x(), y()), True(), EqAtom(c1(), c1()))
	n := c.Normalize()
	if len(n) != 1 {
		t.Fatalf("Normalize = %v, want single atom", n)
	}
	if n[0].String() != "?x = ?y" {
		t.Errorf("canonical atom = %s", n[0])
	}
	f := Conj(EqAtom(c1(), c2()), EqAtom(x(), y()))
	nf := f.Normalize()
	if len(nf) != 1 || !nf[0].TriviallyFalse() {
		t.Errorf("Normalize of contradiction = %v", nf)
	}
}

// TestNormalizePreservesSatisfiability: Normalize never changes the
// satisfiability verdict.
func TestNormalizePreservesSatisfiability(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomConjunction(rng)
		return c.Satisfiable() == c.Normalize().Satisfiable()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestImpliedBindings(t *testing.T) {
	c := Conj(EqAtom(x(), c1()), EqAtom(y(), x()))
	sub, ok := c.ImpliedBindings()
	if !ok {
		t.Fatal("satisfiable conjunction reported unsat")
	}
	if sub[x()] != c1() || sub[y()] != c1() {
		t.Errorf("bindings = %v", sub)
	}
	// Variable-variable class without a constant picks a canonical rep.
	c2c := Conj(EqAtom(x(), y()))
	sub2, _ := c2c.ImpliedBindings()
	if len(sub2) != 1 {
		t.Fatalf("bindings = %v", sub2)
	}
	if b, ok := sub2[y()]; !ok || b != value.Var("x") {
		t.Errorf("want y→?x, got %v", sub2)
	}
	if _, ok := Conj(EqAtom(x(), c1()), EqAtom(x(), c2())).ImpliedBindings(); ok {
		t.Error("unsatisfiable conjunction must report not-ok")
	}
}

func TestResidual(t *testing.T) {
	c := Conj(EqAtom(x(), c1()), NeqAtom(y(), x()), NeqAtom(z(), c2()))
	r, ok := c.Residual()
	if !ok {
		t.Fatal("unexpected unsat")
	}
	// After binding x→1: residual should be {y != 1, z != 2} (normalized).
	if len(r) != 2 {
		t.Fatalf("residual = %v", r)
	}
	for _, a := range r {
		if a.Op != Neq {
			t.Errorf("residual contains equality %s", a)
		}
	}
}

func TestImplies(t *testing.T) {
	c := Conj(EqAtom(x(), c1()))
	if !c.Implies(EqAtom(x(), c1())) {
		t.Error("c must imply its own atom")
	}
	if !c.Implies(NeqAtom(x(), c2())) {
		t.Error("x=1 must imply x≠2")
	}
	if c.Implies(EqAtom(y(), c1())) {
		t.Error("c must not imply an unrelated atom")
	}
	if !Conj(EqAtom(x(), y()), EqAtom(y(), z())).Implies(EqAtom(x(), z())) {
		t.Error("transitivity of implication broken")
	}
}

func TestSubst(t *testing.T) {
	c := Conj(EqAtom(x(), y()), NeqAtom(y(), c1()))
	s := value.Subst{y(): c2()}
	got := c.Subst(s)
	if got[0].R != c2() || got[1].L != c2() {
		t.Errorf("Subst = %v", got)
	}
	if c[0].R != y() {
		t.Error("Subst mutated the receiver")
	}
}

func TestOnlyEqOnlyNeq(t *testing.T) {
	if !Conj(EqAtom(x(), y())).OnlyEq() || Conj(EqAtom(x(), y())).OnlyNeq() {
		t.Error("OnlyEq/OnlyNeq wrong for equality")
	}
	if !Conj(NeqAtom(x(), y())).OnlyNeq() || Conj(NeqAtom(x(), y())).OnlyEq() {
		t.Error("OnlyEq/OnlyNeq wrong for inequality")
	}
	if !Conjunction(nil).OnlyEq() || !Conjunction(nil).OnlyNeq() {
		t.Error("empty conjunction is vacuously both")
	}
}

func TestAndDoesNotAlias(t *testing.T) {
	a := Conj(EqAtom(x(), c1()))
	b := Conj(EqAtom(y(), c2()))
	ab := a.And(b)
	ab[0] = NeqAtom(z(), z())
	if a[0].Op == Neq {
		t.Error("And aliases its receiver")
	}
}

func TestStringRendering(t *testing.T) {
	if got := Conjunction(nil).String(); got != "true" {
		t.Errorf("empty conjunction renders %q", got)
	}
	c := Conj(NeqAtom(x(), c1()))
	if got := c.String(); got != "?x != 1" {
		t.Errorf("rendering = %q", got)
	}
}

func TestVarNames(t *testing.T) {
	c := Conj(EqAtom(z(), y()), NeqAtom(x(), y()))
	got := c.VarNames()
	want := []string{"x", "y", "z"}
	if len(got) != 3 {
		t.Fatalf("VarNames = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("VarNames = %v, want %v", got, want)
		}
	}
}
