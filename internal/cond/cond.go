// Package cond implements the condition language of the paper (§2.2):
// conjunctions of equality atoms (x = y, x = c) and inequality atoms
// (x ≠ y, x ≠ c) over variables and constants, plus and/or formulas with a
// disjunctive-normal-form converter (needed by the UNIQ algorithm of
// Theorem 3.2(2) and by query application to c-tables).
//
// The boolean constants are encoded as in the paper: true is the atom x = x
// and false is x ≠ x; Conjunction{} (empty) is also true.
//
// Satisfiability is over the infinite constant domain 𝒟: a conjunction is
// satisfiable iff merging its equality classes never identifies two
// distinct constants and no inequality atom connects two members of one
// class. This is decided in near-linear time with a dense union–find over
// interned symbol IDs (Proposition 2.1's "checked in PTIME" for global
// conditions) — no string keys are built anywhere on this path.
package cond

import (
	"sort"
	"strings"

	"pw/internal/sym"
	"pw/internal/unionfind"
	"pw/internal/value"
)

// Op is the comparison operator of an atom.
type Op uint8

const (
	// Eq is the equality operator (=).
	Eq Op = iota
	// Neq is the inequality operator (≠).
	Neq
)

// String returns "=" or "!=".
func (o Op) String() string {
	if o == Eq {
		return "="
	}
	return "!="
}

// Atom is a single comparison between two values. Either side may be a
// constant or a variable; const-const atoms are allowed and are immediately
// true or false.
type Atom struct {
	Op   Op
	L, R value.Value
}

// EqAtom returns the atom l = r.
func EqAtom(l, r value.Value) Atom { return Atom{Op: Eq, L: l, R: r} }

// NeqAtom returns the atom l ≠ r.
func NeqAtom(l, r value.Value) Atom { return Atom{Op: Neq, L: l, R: r} }

// True is the canonical true atom (encoded, per the paper, as x = x; we use
// a constant for ground-ness: "0" = "0").
func True() Atom { return EqAtom(value.Const("0"), value.Const("0")) }

// False is the canonical false atom ("0" ≠ "0").
func False() Atom { return NeqAtom(value.Const("0"), value.Const("0")) }

// Negate returns the complementary atom.
func (a Atom) Negate() Atom {
	if a.Op == Eq {
		return Atom{Op: Neq, L: a.L, R: a.R}
	}
	return Atom{Op: Eq, L: a.L, R: a.R}
}

// TriviallyTrue reports whether the atom holds under every valuation
// (syntactically: u = u, or c = c / c ≠ d on constants).
func (a Atom) TriviallyTrue() bool {
	if a.L.IsConst() && a.R.IsConst() {
		return (a.Op == Eq) == (a.L == a.R)
	}
	return a.Op == Eq && a.L == a.R
}

// TriviallyFalse reports whether the atom fails under every valuation
// (syntactically: u ≠ u, or c = d / c ≠ c on constants).
func (a Atom) TriviallyFalse() bool {
	if a.L.IsConst() && a.R.IsConst() {
		return (a.Op == Eq) == (a.L != a.R)
	}
	return a.Op == Neq && a.L == a.R
}

// normalize orders the two sides canonically (constants first, then by
// name) so that syntactic deduplication catches x=y vs y=x.
func (a Atom) normalize() Atom {
	if a.L.Compare(a.R) > 0 {
		a.L, a.R = a.R, a.L
	}
	return a
}

// Subst replaces variables according to s. Variables absent from s are left
// untouched.
func (a Atom) Subst(s value.Subst) Atom {
	if a.L.IsVar() {
		if v, ok := s[a.L]; ok {
			a.L = v
		}
	}
	if a.R.IsVar() {
		if v, ok := s[a.R]; ok {
			a.R = v
		}
	}
	return a
}

// Vars appends the variable names of a to dst (deduplicated via seen).
func (a Atom) Vars(dst []string, seen map[string]bool) []string {
	for _, v := range []value.Value{a.L, a.R} {
		if v.IsVar() && !seen[v.Name()] {
			seen[v.Name()] = true
			dst = append(dst, v.Name())
		}
	}
	return dst
}

// VarIDs appends the variable IDs of a to dst (dedup via seen).
func (a Atom) VarIDs(dst []sym.ID, seen map[sym.ID]bool) []sym.ID {
	for _, v := range []value.Value{a.L, a.R} {
		if v.IsVar() && !seen[v.ID()] {
			seen[v.ID()] = true
			dst = append(dst, v.ID())
		}
	}
	return dst
}

// String renders the atom in .pw syntax, e.g. "?x != 3".
func (a Atom) String() string {
	return a.L.String() + " " + a.Op.String() + " " + a.R.String()
}

// Compare gives a total syntactic order on atoms.
func (a Atom) Compare(b Atom) int {
	if c := a.L.Compare(b.L); c != 0 {
		return c
	}
	if c := a.R.Compare(b.R); c != 0 {
		return c
	}
	switch {
	case a.Op < b.Op:
		return -1
	case a.Op > b.Op:
		return 1
	}
	return 0
}

// Conjunction is a conjunct of atoms. nil and the empty conjunction are
// true. Conjunctions are the only condition form the paper allows on
// c-tables (global and local).
type Conjunction []Atom

// Conj builds a conjunction from atoms.
func Conj(atoms ...Atom) Conjunction {
	c := make(Conjunction, len(atoms))
	copy(c, atoms)
	return c
}

// Clone returns a deep copy.
func (c Conjunction) Clone() Conjunction {
	out := make(Conjunction, len(c))
	copy(out, c)
	return out
}

// And returns the conjunction c ∧ d (freshly allocated).
func (c Conjunction) And(d Conjunction) Conjunction {
	out := make(Conjunction, 0, len(c)+len(d))
	out = append(out, c...)
	out = append(out, d...)
	return out
}

// Subst applies a substitution to every atom.
func (c Conjunction) Subst(s value.Subst) Conjunction {
	out := make(Conjunction, len(c))
	for i, a := range c {
		out[i] = a.Subst(s)
	}
	return out
}

// Vars appends the variable names occurring in c to dst (dedup via seen).
func (c Conjunction) Vars(dst []string, seen map[string]bool) []string {
	for _, a := range c {
		dst = a.Vars(dst, seen)
	}
	return dst
}

// VarIDs appends the variable IDs occurring in c to dst (dedup via seen).
func (c Conjunction) VarIDs(dst []sym.ID, seen map[sym.ID]bool) []sym.ID {
	for _, a := range c {
		dst = a.VarIDs(dst, seen)
	}
	return dst
}

// VarNames returns the set of variable names in c as a fresh sorted slice.
func (c Conjunction) VarNames() []string {
	vs := c.Vars(nil, map[string]bool{})
	sort.Strings(vs)
	return vs
}

// Consts appends the constant names occurring in c to dst (dedup via seen).
func (c Conjunction) Consts(dst []string, seen map[string]bool) []string {
	for _, a := range c {
		for _, v := range []value.Value{a.L, a.R} {
			if v.IsConst() && !seen[v.Name()] {
				seen[v.Name()] = true
				dst = append(dst, v.Name())
			}
		}
	}
	return dst
}

// ConstIDs appends the constant IDs occurring in c to dst (dedup via seen).
func (c Conjunction) ConstIDs(dst []sym.ID, seen map[sym.ID]bool) []sym.ID {
	for _, a := range c {
		for _, v := range []value.Value{a.L, a.R} {
			if v.IsConst() && !seen[v.ID()] {
				seen[v.ID()] = true
				dst = append(dst, v.ID())
			}
		}
	}
	return dst
}

// Normalize returns an equivalent conjunction with trivially-true atoms
// dropped, both sides of each atom ordered canonically, duplicates removed,
// and atoms sorted. If any atom is trivially false the result is the single
// False atom. Normalize does not perform equality propagation; see Closure.
func (c Conjunction) Normalize() Conjunction {
	out := make(Conjunction, 0, len(c))
	seen := make(map[Atom]bool, len(c))
	for _, a := range c {
		if a.TriviallyFalse() {
			return Conjunction{False()}
		}
		if a.TriviallyTrue() {
			continue
		}
		a = a.normalize()
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// closureState is the equality closure of a conjunction: a dense
// union–find over the values occurring in the atoms, with the constant (if
// any) of each class tracked at the root. All bookkeeping is in terms of
// interned IDs; no strings are built.
type closureState struct {
	nodes   []value.Value
	idx     map[value.Value]int32
	uf      *unionfind.Dense
	constOf []sym.ID // valid at class roots; sym.None = no constant
}

func (s *closureState) node(v value.Value) int32 {
	if i, ok := s.idx[v]; ok {
		return i
	}
	i := int32(len(s.nodes))
	s.idx[v] = i
	s.nodes = append(s.nodes, v)
	s.uf.Grow(len(s.nodes))
	if v.IsConst() {
		s.constOf = append(s.constOf, v.ID())
	} else {
		s.constOf = append(s.constOf, sym.None)
	}
	return i
}

// buildClosure merges equality classes and checks consistency over the
// atoms of c followed by extra. It returns nil when the combined
// conjunction is unsatisfiable. Constant-constant merges of distinct
// constants and violated inequalities make it false.
func buildClosure(c Conjunction, extra []Atom) *closureState {
	n := len(c) + len(extra)
	s := &closureState{
		idx: make(map[value.Value]int32, 2*n),
		uf:  unionfind.NewDense(0),
	}
	each := func(fn func(Atom) bool) bool {
		for _, a := range c {
			if !fn(a) {
				return false
			}
		}
		for _, a := range extra {
			if !fn(a) {
				return false
			}
		}
		return true
	}
	// Merge equality classes, propagating class constants to roots.
	ok := each(func(a Atom) bool {
		l, r := s.node(a.L), s.node(a.R)
		if a.Op != Eq {
			return true
		}
		rl, rr := s.uf.Find(l), s.uf.Find(r)
		if rl == rr {
			return true
		}
		cl, cr := s.constOf[rl], s.constOf[rr]
		if cl != sym.None && cr != sym.None && cl != cr {
			return false // two distinct constants forced equal
		}
		root := s.uf.Union(rl, rr)
		if cl != sym.None {
			s.constOf[root] = cl
		} else if cr != sym.None {
			s.constOf[root] = cr
		}
		return true
	})
	if !ok {
		return nil
	}
	// Check inequalities: same class, or classes pinned to one constant.
	ok = each(func(a Atom) bool {
		if a.Op != Neq {
			return true
		}
		rl, rr := s.uf.Find(s.idx[a.L]), s.uf.Find(s.idx[a.R])
		if rl == rr {
			return false
		}
		cl, cr := s.constOf[rl], s.constOf[rr]
		return cl == sym.None || cl != cr
	})
	if !ok {
		return nil
	}
	return s
}

// Satisfiable reports whether some valuation over the infinite constant
// domain satisfies c. It runs in near-linear time.
func (c Conjunction) Satisfiable() bool {
	return buildClosure(c, nil) != nil
}

// SatisfiableWith reports whether c ∧ extra is satisfiable without
// materializing the combined conjunction.
func (c Conjunction) SatisfiableWith(extra ...Atom) bool {
	return buildClosure(c, extra) != nil
}

// ImpliedBindings returns the substitution forced by the equalities of c:
// every variable whose equality class contains a constant is mapped to that
// constant, and every variable whose class representative is another
// variable is mapped to a canonical class variable. The second return is
// false if c is unsatisfiable.
//
// This is the normalization step of Theorem 3.2(1): "if it follows from the
// global condition that a variable equals a constant, then the variable is
// replaced by that constant in the table".
func (c Conjunction) ImpliedBindings() (value.Subst, bool) {
	s := buildClosure(c, nil)
	if s == nil {
		return nil, false
	}
	// Group class members by root.
	classes := make(map[int32][]value.Value, len(s.nodes))
	for i, v := range s.nodes {
		r := s.uf.Find(int32(i))
		classes[r] = append(classes[r], v)
	}
	out := make(value.Subst)
	for root, members := range classes {
		varMembers := members[:0:0]
		for _, m := range members {
			if m.IsVar() {
				varMembers = append(varMembers, m)
			}
		}
		if len(varMembers) == 0 {
			continue
		}
		var rep value.Value
		if cid := s.constOf[root]; cid != sym.None {
			rep = value.Of(cid)
		} else {
			// Lexicographically least variable name, for deterministic
			// normalized output.
			rep = varMembers[0]
			for _, m := range varMembers[1:] {
				if m.Name() < rep.Name() {
					rep = m
				}
			}
		}
		for _, m := range varMembers {
			if m == rep {
				continue
			}
			out[m] = rep
		}
	}
	return out, true
}

// Residual returns the inequality atoms of c rewritten through the implied
// bindings, normalized. Together with ImpliedBindings it splits a g-table
// global condition into "equalities incorporated in the table" plus a pure
// inequality condition. The boolean is false when c is unsatisfiable.
func (c Conjunction) Residual() (Conjunction, bool) {
	sub, ok := c.ImpliedBindings()
	if !ok {
		return nil, false
	}
	var out Conjunction
	for _, a := range c {
		if a.Op == Neq {
			out = append(out, a.Subst(sub))
		}
	}
	return out.Normalize(), true
}

// Implies reports whether c logically implies atom a over the infinite
// domain (i.e. c ∧ ¬a is unsatisfiable).
func (c Conjunction) Implies(a Atom) bool {
	return !c.SatisfiableWith(a.Negate())
}

// String renders the conjunction as comma-separated atoms; the empty
// conjunction renders as "true".
func (c Conjunction) String() string {
	if len(c) == 0 {
		return "true"
	}
	parts := make([]string, len(c))
	for i, a := range c {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}

// IsTrue reports whether the conjunction is syntactically the constant
// true (empty or all atoms trivially true).
func (c Conjunction) IsTrue() bool {
	for _, a := range c {
		if !a.TriviallyTrue() {
			return false
		}
	}
	return true
}

// OnlyEq reports whether every atom is an equality.
func (c Conjunction) OnlyEq() bool {
	for _, a := range c {
		if a.Op != Eq {
			return false
		}
	}
	return true
}

// OnlyNeq reports whether every atom is an inequality.
func (c Conjunction) OnlyNeq() bool {
	for _, a := range c {
		if a.Op != Neq {
			return false
		}
	}
	return true
}
