package cond

import "strings"

// Formula is a positive boolean combination (and/or) of atoms. The paper's
// c-tables only carry conjunctions, but query application builds and/or
// structures internally (see the remark (*) in the proof of Theorem 3.2(2):
// "the local conditions are kept as formulas with both ors and ands" before
// being put in disjunctive normal form). Formula is that intermediate
// representation.
type Formula interface {
	// DNF returns the disjunctive normal form as a slice of conjunctions.
	// An empty slice is the constant false; a slice containing an empty
	// conjunction is the constant true.
	DNF() []Conjunction
	// FormulaString renders the formula.
	FormulaString() string
}

// AtomF wraps an atom as a formula.
type AtomF struct{ A Atom }

// DNF implements Formula.
func (f AtomF) DNF() []Conjunction {
	if f.A.TriviallyFalse() {
		return nil
	}
	if f.A.TriviallyTrue() {
		return []Conjunction{{}}
	}
	return []Conjunction{{f.A}}
}

// FormulaString implements Formula.
func (f AtomF) FormulaString() string { return f.A.String() }

// AndF is the conjunction of sub-formulas. The empty AndF is true.
type AndF []Formula

// DNF implements Formula by distributing and over or.
func (f AndF) DNF() []Conjunction {
	out := []Conjunction{{}}
	for _, sub := range f {
		ds := sub.DNF()
		next := make([]Conjunction, 0, len(out)*len(ds))
		for _, a := range out {
			for _, b := range ds {
				merged := a.And(b)
				if merged.Satisfiable() {
					next = append(next, merged.Normalize())
				}
			}
		}
		out = dedupeConjunctions(next)
		if len(out) == 0 {
			return nil
		}
	}
	return out
}

// FormulaString implements Formula.
func (f AndF) FormulaString() string {
	if len(f) == 0 {
		return "true"
	}
	parts := make([]string, len(f))
	for i, s := range f {
		parts[i] = "(" + s.FormulaString() + ")"
	}
	return strings.Join(parts, " and ")
}

// OrF is the disjunction of sub-formulas. The empty OrF is false.
type OrF []Formula

// DNF implements Formula.
func (f OrF) DNF() []Conjunction {
	var out []Conjunction
	for _, sub := range f {
		out = append(out, sub.DNF()...)
	}
	return dedupeConjunctions(out)
}

// FormulaString implements Formula.
func (f OrF) FormulaString() string {
	if len(f) == 0 {
		return "false"
	}
	parts := make([]string, len(f))
	for i, s := range f {
		parts[i] = "(" + s.FormulaString() + ")"
	}
	return strings.Join(parts, " or ")
}

// ConjF lifts a conjunction to a formula.
type ConjF struct{ C Conjunction }

// DNF implements Formula.
func (f ConjF) DNF() []Conjunction {
	if !f.C.Satisfiable() {
		return nil
	}
	return []Conjunction{f.C.Normalize()}
}

// FormulaString implements Formula.
func (f ConjF) FormulaString() string { return f.C.String() }

func dedupeConjunctions(cs []Conjunction) []Conjunction {
	seen := make(map[string]bool, len(cs))
	out := cs[:0]
	for _, c := range cs {
		n := c.Normalize()
		k := n.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, n)
		}
	}
	return out
}
