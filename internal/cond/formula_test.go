package cond

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pw/internal/value"
)

// evalConj evaluates a conjunction under a total assignment.
func evalConj(c Conjunction, assign map[string]string) bool {
	get := func(v value.Value) string {
		if v.IsConst() {
			return v.Name()
		}
		return assign[v.Name()]
	}
	for _, a := range c {
		l, r := get(a.L), get(a.R)
		if (a.Op == Eq) != (l == r) {
			return false
		}
	}
	return true
}

func evalFormula(f Formula, assign map[string]string) bool {
	switch n := f.(type) {
	case AtomF:
		return evalConj(Conjunction{n.A}, assign)
	case ConjF:
		return evalConj(n.C, assign)
	case AndF:
		for _, s := range n {
			if !evalFormula(s, assign) {
				return false
			}
		}
		return true
	case OrF:
		for _, s := range n {
			if evalFormula(s, assign) {
				return true
			}
		}
		return false
	}
	panic("unknown formula")
}

func formulaVars(f Formula) []string {
	switch n := f.(type) {
	case AtomF:
		return Conjunction{n.A}.VarNames()
	case ConjF:
		return n.C.VarNames()
	case AndF:
		var out []string
		seen := map[string]bool{}
		for _, s := range n {
			for _, v := range formulaVars(s) {
				if !seen[v] {
					seen[v] = true
					out = append(out, v)
				}
			}
		}
		return out
	case OrF:
		var out []string
		seen := map[string]bool{}
		for _, s := range n {
			for _, v := range formulaVars(s) {
				if !seen[v] {
					seen[v] = true
					out = append(out, v)
				}
			}
		}
		return out
	}
	panic("unknown formula")
}

func randomFormula(rng *rand.Rand, depth int) Formula {
	if depth == 0 || rng.Intn(3) == 0 {
		vals := []value.Value{x(), y(), z(), c1(), c2()}
		op := Eq
		if rng.Intn(2) == 0 {
			op = Neq
		}
		return AtomF{Atom{Op: op, L: vals[rng.Intn(len(vals))], R: vals[rng.Intn(len(vals))]}}
	}
	n := 1 + rng.Intn(2)
	subs := make([]Formula, n)
	for i := range subs {
		subs[i] = randomFormula(rng, depth-1)
	}
	if rng.Intn(2) == 0 {
		return AndF(subs)
	}
	return OrF(subs)
}

// TestDNFEquivalence: the DNF of a formula is satisfied by exactly the
// assignments that satisfy the formula (checked exhaustively over a small
// domain).
func TestDNFEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		form := randomFormula(rng, 3)
		dnf := form.DNF()
		vars := formulaVars(form)
		domain := []string{"1", "2", "3", "4"}
		assign := map[string]string{}
		var rec func(i int) bool
		rec = func(i int) bool {
			if i == len(vars) {
				want := evalFormula(form, assign)
				got := false
				for _, c := range dnf {
					if evalConj(c, assign) {
						got = true
						break
					}
				}
				return got == want
			}
			for _, d := range domain {
				assign[vars[i]] = d
				if !rec(i + 1) {
					return false
				}
			}
			return true
		}
		return rec(0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestDNFConstants(t *testing.T) {
	if got := (AndF{}).DNF(); len(got) != 1 || len(got[0]) != 0 {
		t.Errorf("DNF(true) = %v", got)
	}
	if got := (OrF{}).DNF(); len(got) != 0 {
		t.Errorf("DNF(false) = %v", got)
	}
	if got := (AtomF{False()}).DNF(); len(got) != 0 {
		t.Errorf("DNF(false atom) = %v", got)
	}
	if got := (AtomF{True()}).DNF(); len(got) != 1 || len(got[0]) != 0 {
		t.Errorf("DNF(true atom) = %v", got)
	}
}

func TestDNFPrunesContradictions(t *testing.T) {
	// (x=1 and x=2) or (x=1): the contradictory disjunct must vanish.
	f := OrF{
		AndF{AtomF{EqAtom(x(), c1())}, AtomF{EqAtom(x(), c2())}},
		AtomF{EqAtom(x(), c1())},
	}
	dnf := f.DNF()
	if len(dnf) != 1 {
		t.Fatalf("DNF = %v, want 1 disjunct", dnf)
	}
}

func TestFormulaString(t *testing.T) {
	f := AndF{AtomF{EqAtom(x(), c1())}, OrF{}}
	if f.FormulaString() == "" {
		t.Error("empty rendering")
	}
	if (AndF{}).FormulaString() != "true" {
		t.Error("AndF{} should render true")
	}
	if (OrF{}).FormulaString() != "false" {
		t.Error("OrF{} should render false")
	}
	if (ConjF{Conj(True())}).FormulaString() == "" {
		t.Error("ConjF rendering empty")
	}
}
