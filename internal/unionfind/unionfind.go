// Package unionfind provides a disjoint-set forest over string keys with
// path compression and union by rank. It is the substrate for equality
// reasoning in internal/cond and internal/eqlogic: variables and constants
// are nodes, equality atoms are unions, and a condition is consistent only
// if no two distinct constants share a class.
package unionfind

// UF is a disjoint-set forest over strings. The zero value is not usable;
// call New.
type UF struct {
	parent map[string]string
	rank   map[string]int
	n      int // number of keys ever added
}

// New returns an empty forest.
func New() *UF {
	return &UF{parent: make(map[string]string), rank: make(map[string]int)}
}

// Add ensures key is present as a singleton class.
func (u *UF) Add(key string) {
	if _, ok := u.parent[key]; !ok {
		u.parent[key] = key
		u.rank[key] = 0
		u.n++
	}
}

// Find returns the representative of key's class, adding key if absent.
func (u *UF) Find(key string) string {
	u.Add(key)
	root := key
	for u.parent[root] != root {
		root = u.parent[root]
	}
	// Path compression.
	for u.parent[key] != root {
		key, u.parent[key] = u.parent[key], root
	}
	return root
}

// Union merges the classes of a and b and returns the new representative.
func (u *UF) Union(a, b string) string {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return ra
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	return ra
}

// Same reports whether a and b are in the same class.
func (u *UF) Same(a, b string) bool { return u.Find(a) == u.Find(b) }

// Len returns the number of keys added.
func (u *UF) Len() int { return u.n }

// Clone returns an independent copy of the forest.
func (u *UF) Clone() *UF {
	c := &UF{
		parent: make(map[string]string, len(u.parent)),
		rank:   make(map[string]int, len(u.rank)),
		n:      u.n,
	}
	for k, v := range u.parent {
		c.parent[k] = v
	}
	for k, v := range u.rank {
		c.rank[k] = v
	}
	return c
}

// Classes returns the partition as a map from representative to members.
// Member order within a class is unspecified.
func (u *UF) Classes() map[string][]string {
	out := make(map[string][]string)
	for k := range u.parent {
		r := u.Find(k)
		out[r] = append(out[r], k)
	}
	return out
}
