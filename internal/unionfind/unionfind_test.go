package unionfind

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicUnionFind(t *testing.T) {
	u := New()
	u.Add("a")
	u.Add("b")
	u.Add("c")
	if u.Same("a", "b") {
		t.Error("fresh keys must be in distinct classes")
	}
	u.Union("a", "b")
	if !u.Same("a", "b") {
		t.Error("union failed")
	}
	if u.Same("a", "c") {
		t.Error("unrelated keys merged")
	}
	u.Union("b", "c")
	if !u.Same("a", "c") {
		t.Error("transitivity broken")
	}
}

func TestFindAddsKey(t *testing.T) {
	u := New()
	if u.Find("ghost") != "ghost" {
		t.Error("Find of a fresh key should return itself")
	}
	if u.Len() != 1 {
		t.Error("Find must add the key")
	}
}

func TestUnionIdempotent(t *testing.T) {
	u := New()
	u.Union("a", "b")
	r1 := u.Find("a")
	u.Union("a", "b")
	if u.Find("a") != r1 {
		t.Error("repeated union changed the representative")
	}
}

func TestCloneIndependence(t *testing.T) {
	u := New()
	u.Union("a", "b")
	c := u.Clone()
	c.Union("a", "z")
	if u.Same("a", "z") {
		t.Error("clone shares state with original")
	}
	if !c.Same("a", "b") {
		t.Error("clone lost state")
	}
}

func TestClasses(t *testing.T) {
	u := New()
	u.Union("a", "b")
	u.Union("c", "d")
	u.Add("e")
	cl := u.Classes()
	if len(cl) != 3 {
		t.Fatalf("want 3 classes, got %d: %v", len(cl), cl)
	}
	sizes := map[int]int{}
	for _, members := range cl {
		sizes[len(members)]++
	}
	if sizes[2] != 2 || sizes[1] != 1 {
		t.Errorf("class sizes wrong: %v", cl)
	}
}

// TestAgainstNaivePartition drives random unions and compares Same against
// a naive partition refinement.
func TestAgainstNaivePartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
		u := New()
		naive := map[string]int{}
		for i, k := range keys {
			naive[k] = i
		}
		for step := 0; step < 12; step++ {
			x := keys[rng.Intn(len(keys))]
			y := keys[rng.Intn(len(keys))]
			u.Union(x, y)
			gx, gy := naive[x], naive[y]
			for k, g := range naive {
				if g == gy {
					naive[k] = gx
				}
			}
		}
		for _, x := range keys {
			for _, y := range keys {
				if u.Same(x, y) != (naive[x] == naive[y]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
