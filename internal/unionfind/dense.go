package unionfind

// Dense is a disjoint-set forest over dense integer nodes 0..n-1 with path
// compression and union by rank. It is the allocation-light substrate the
// interned-symbol condition closure runs on: callers map symbol IDs to
// dense node indices once and then merge/find in pure integer arithmetic,
// where the string-keyed UF needed a map probe and a key allocation per
// operation.
type Dense struct {
	parent []int32
	rank   []uint8
}

// NewDense returns a forest of n singleton classes. n may be zero; Grow
// extends the forest later.
func NewDense(n int) *Dense {
	d := &Dense{}
	d.Grow(n)
	return d
}

// Grow extends the forest to at least n nodes, each new node a singleton.
func (d *Dense) Grow(n int) {
	for len(d.parent) < n {
		d.parent = append(d.parent, int32(len(d.parent)))
		d.rank = append(d.rank, 0)
	}
}

// Len returns the number of nodes.
func (d *Dense) Len() int { return len(d.parent) }

// Find returns the representative of x's class.
func (d *Dense) Find(x int32) int32 {
	root := x
	for d.parent[root] != root {
		root = d.parent[root]
	}
	for d.parent[x] != root {
		x, d.parent[x] = d.parent[x], root
	}
	return root
}

// Union merges the classes of a and b and returns the new representative.
func (d *Dense) Union(a, b int32) int32 {
	ra, rb := d.Find(a), d.Find(b)
	if ra == rb {
		return ra
	}
	if d.rank[ra] < d.rank[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	if d.rank[ra] == d.rank[rb] {
		d.rank[ra]++
	}
	return ra
}

// Same reports whether a and b share a class.
func (d *Dense) Same(a, b int32) bool { return d.Find(a) == d.Find(b) }
