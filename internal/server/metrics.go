// Server-side observability: the Prometheus-style metric families
// behind GET /metrics, the per-request context (trace + cost sink +
// query fingerprint) threaded through dispatch, request-ID generation,
// and the slow-query log.
//
// Hot-path discipline: every per-op counter and histogram handle is
// resolved once at construction into plain maps that are read-only
// afterwards, so recording a request is a handful of atomic adds with
// no lock and no label formatting. Per-database families are computed
// at scrape time instead of being maintained per request.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"pw/internal/obs"
	"pw/internal/wsdalg"
)

// metricOps are the request ops with dedicated metric series; anything
// else (including malformed ops) lands on "other" so label cardinality
// stays bounded no matter what clients send.
var metricOps = []string{
	"memb", "uniq", "poss", "cert", "count", "sample",
	"poss-ans", "cert-ans", "cont", "write", "other",
}

// serverMetrics is the server's metric surface: one registry for the
// static families plus pre-resolved per-op handles.
type serverMetrics struct {
	reg *obs.Registry

	requests map[string]*obs.Counter   // by op
	errors   map[string]*obs.Counter   // by op
	latency  map[string]*obs.Histogram // by op

	httpRequests *obs.CounterVec // path, code — recorded by the HTTP layer

	ansHits    *obs.Counter
	ansMisses  *obs.Counter
	ansPurged  *obs.Counter
	prepHits   *obs.Counter
	prepMisses *obs.Counter
	coalesced  *obs.Counter
	semWait    *obs.Histogram
	inflight   *obs.Gauge
	slow       *obs.Counter

	explain       *obs.Counter
	flightRecords *obs.Counter
}

func newServerMetrics(s *Server) *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{
		reg:      reg,
		requests: make(map[string]*obs.Counter, len(metricOps)),
		errors:   make(map[string]*obs.Counter, len(metricOps)),
		latency:  make(map[string]*obs.Histogram, len(metricOps)),
	}
	reqs := reg.CounterVec("pwd_requests_total", "Requests handled, by op.", "op")
	errs := reg.CounterVec("pwd_request_errors_total", "Requests that returned an error, by op.", "op")
	lat := reg.HistogramVec("pwd_request_seconds", "Request handling latency in seconds, by op.", nil, "op")
	for _, op := range metricOps {
		m.requests[op] = reqs.With(op)
		m.errors[op] = errs.With(op)
		m.latency[op] = lat.With(op)
	}
	m.httpRequests = reg.CounterVec("pwd_http_requests_total", "HTTP requests served, by path and status code.", "path", "code")
	m.ansHits = reg.Counter("pwd_answer_cache_hits_total", "Answer-cache hits.")
	m.ansMisses = reg.Counter("pwd_answer_cache_misses_total", "Answer-cache misses.")
	m.ansPurged = reg.Counter("pwd_answer_cache_purged_total", "Answer-cache entries purged on version bumps.")
	m.prepHits = reg.Counter("pwd_prepared_hits_total", "Prepared-query cache hits.")
	m.prepMisses = reg.Counter("pwd_prepared_misses_total", "Prepared-query cache misses.")
	m.coalesced = reg.Counter("pwd_coalesced_total", "Requests that piggybacked on an identical in-flight evaluation.")
	m.semWait = reg.Histogram("pwd_sem_wait_seconds", "Time heavy evaluations spent queued on the admission semaphore.", nil)
	m.inflight = reg.Gauge("pwd_inflight_evals", "Heavy evaluations currently holding an admission slot.")
	m.slow = reg.Counter("pwd_slow_queries_total", "Requests that exceeded the slow-query threshold.")
	m.explain = reg.Counter("pwd_explain_total", "Requests that asked for a query plan (?explain=1).")
	m.flightRecords = reg.Counter("pwd_flight_records_total", "Requests recorded into the flight recorder.")
	reg.GaugeFunc("pwd_flight_entries", "Live entries in the flight recorder ring.", func() float64 {
		return float64(s.recorder.len())
	})
	reg.GaugeFunc("pwd_answer_cache_entries", "Live answer-cache entries.", func() float64 {
		s.cacheMu.Lock()
		n := s.answers.len()
		s.cacheMu.Unlock()
		return float64(n)
	})
	reg.GaugeFunc("pwd_prepared_entries", "Live prepared-query cache entries.", func() float64 {
		s.cacheMu.Lock()
		n := s.prepared.len()
		s.cacheMu.Unlock()
		return float64(n)
	})
	return m
}

// op resolves a request op to its metric label ("other" off the known
// set, bounding cardinality).
func (m *serverMetrics) op(op string) string {
	if _, ok := m.requests[op]; ok {
		return op
	}
	return "other"
}

// WriteMetrics writes the full metric surface in the Prometheus text
// exposition format: the static families, then the per-database
// families computed from the live database set (version, resident
// backend kind, per-db answer-cache traffic).
func (s *Server) WriteMetrics(w io.Writer) {
	s.metrics.reg.WritePrometheus(w)
	dbs := s.DBStats()
	version := make([]obs.Series, 0, len(dbs))
	backend := make([]obs.Series, 0, len(dbs))
	hits := make([]obs.Series, 0, len(dbs))
	misses := make([]obs.Series, 0, len(dbs))
	entries := make([]obs.Series, 0, len(dbs))
	for _, d := range dbs {
		name := obs.Label{Key: "db", Value: d.Name}
		version = append(version, obs.Series{Labels: []obs.Label{name}, Value: float64(d.Version)})
		backend = append(backend, obs.Series{Labels: []obs.Label{
			name, {Key: "backend", Value: d.Backend}, {Key: "kind", Value: d.Kind},
		}, Value: 1})
		hits = append(hits, obs.Series{Labels: []obs.Label{name}, Value: float64(d.AnswerHits)})
		misses = append(misses, obs.Series{Labels: []obs.Label{name}, Value: float64(d.AnswerMisses)})
		entries = append(entries, obs.Series{Labels: []obs.Label{name}, Value: float64(d.AnswerEntries)})
	}
	obs.WriteFamily(w, "pwd_db_version", "gauge", "Installed version of each loaded database.", version...)
	obs.WriteFamily(w, "pwd_db_backend_info", "gauge", "Resident backend of each loaded database (1 per db; backend and kind as labels).", backend...)
	obs.WriteFamily(w, "pwd_db_answer_cache_hits_total", "counter", "Answer-cache hits attributed to each database.", hits...)
	obs.WriteFamily(w, "pwd_db_answer_cache_misses_total", "counter", "Answer-cache misses attributed to each database.", misses...)
	obs.WriteFamily(w, "pwd_db_answer_cache_entries", "gauge", "Live answer-cache entries keyed on each database.", entries...)
}

// reqCtx is the per-request observability context threaded through
// dispatch: the trace (nil when untraced), the cost sink (always
// non-nil — the slow-query log needs counters even for untraced
// requests), the canonical query fingerprint once resolved, the
// request ID (empty for direct Do callers), whether the caller asked
// for an EXPLAIN plan, and the plan the dispatched op produced.
type reqCtx struct {
	tr      *obs.Trace
	cost    *obs.Cost
	fp      string
	id      string
	explain bool
	plan    *wsdalg.Plan
}

func newReqCtx(tr *obs.Trace) *reqCtx {
	rc := &reqCtx{tr: tr, cost: tr.Cost()}
	if rc.cost == nil {
		rc.cost = obs.NewCost()
	}
	return rc
}

// span opens a child of the trace root (nil when untraced — all Span
// methods degrade).
func (rc *reqCtx) span(name string) *obs.Span { return rc.tr.Root().StartChild(name) }

// RequestID mints a process-unique request ID: a per-server random base
// plus a sequence number. The HTTP layer stamps it on every response
// (X-Request-Id) and traced responses embed it.
func (s *Server) RequestID() string {
	return fmt.Sprintf("%s-%d", s.idBase, s.idSeq.Add(1))
}

// slowLogLine is the JSON shape of one slow-query log line. The
// request_id field matches the X-Request-Id header the HTTP layer sent
// back, so a client-observed slow call can be joined to its server-side
// cost breakdown (and flight-recorder entry) by grepping one token.
type slowLogLine struct {
	Time      string           `json:"time"`
	RequestID string           `json:"request_id,omitempty"`
	Op        string           `json:"op"`
	DB        string           `json:"db,omitempty"`
	Fp        string           `json:"fp,omitempty"`
	DurUS     int64            `json:"us"`
	Status    int              `json:"status"`
	Error     string           `json:"error,omitempty"`
	ErrClass  string           `json:"error_class,omitempty"`
	Plan      string           `json:"plan,omitempty"`
	Cost      map[string]int64 `json:"cost,omitempty"`
}

// maybeLogSlow emits one JSON line per request that exceeded the
// configured threshold: op, db, canonical query fingerprint, duration,
// outcome, plan summary and the request's nonzero cost counters —
// enough to explain the request without re-running it, and structured
// so log pipelines need no bespoke parser.
func (s *Server) maybeLogSlow(req *Request, rc *reqCtx, dur time.Duration, err error) {
	if s.slowThreshold <= 0 || dur < s.slowThreshold || s.slowLog == nil {
		return
	}
	s.metrics.slow.Inc()
	line := slowLogLine{
		Time:      time.Now().UTC().Format(time.RFC3339Nano),
		RequestID: rc.id,
		Op:        req.Op,
		DB:        req.DB,
		Fp:        rc.fp,
		DurUS:     dur.Microseconds(),
		Status:    200,
		Plan:      planSummary(rc.plan),
		Cost:      rc.cost.Counters(),
	}
	if err != nil {
		line.Status = statusFor(err)
		line.Error = err.Error()
		line.ErrClass = errorClass(err)
	}
	b, merr := json.Marshal(line)
	if merr != nil {
		return
	}
	b = append(b, '\n')
	s.slowLog.Write(b)
}
