// Differential validation of the server path: seeded random
// decompositions served through the in-process HTTP handler, every
// decision and answer operation checked against the per-world oracle by
// the shared metamorphic harness. Identity cases exercise the full
// operation set (MEMB/POSS/CERT/UNIQ/count ride the JSON wire format
// both ways); the view suites in internal/wsdalg add the query path.
package server_test

import (
	"fmt"
	"testing"

	"pw/internal/difftest"
	"pw/internal/gen"
)

func TestDifferentialServer(t *testing.T) {
	difftest.Run(t, difftest.Config{
		Tag:   "server",
		Cases: 60,
		Gen: func(seed int64) (*difftest.Case, bool) {
			w, err := gen.RandomWSD(seed, 3, 3, 2, 4)
			if err != nil {
				return nil, false
			}
			if !w.Count().IsInt64() || w.Count().Int64() > 200 {
				return nil, false
			}
			return &difftest.Case{
				Tag:    fmt.Sprintf("server seed %d", seed),
				Worlds: w.Expand(0),
				WSD:    w,
			}, true
		},
		Backends: []difftest.Backend{difftest.ServerBackend("server/http", 2)},
	})
}
