package server

import "container/list"

// lruCache is a mutex-free LRU used under the owning structure's lock
// discipline: Server guards each instance with its own sync.Mutex. A
// capacity <= 0 disables the cache entirely (every Get misses, every Add
// is dropped) — the configuration the uncached benchmark probes and the
// cache-ablation tests run under.
type lruCache struct {
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// get returns the cached value and marks it most recently used.
func (c *lruCache) get(key string) (any, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	e, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(e)
	return e.Value.(*lruEntry).val, true
}

// add inserts or refreshes key, evicting the least recently used entry
// beyond capacity.
func (c *lruCache) add(key string, val any) {
	if c.cap <= 0 {
		return
	}
	if e, ok := c.m[key]; ok {
		c.ll.MoveToFront(e)
		e.Value.(*lruEntry).val = val
		return
	}
	c.m[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.m, tail.Value.(*lruEntry).key)
	}
}

// len reports the live entry count.
func (c *lruCache) len() int { return c.ll.Len() }

// purge removes every entry whose key satisfies drop, returning the
// number removed. Used on version bumps to reclaim answers cached
// against versions that can never be requested again (their keys embed
// the dead version, so they would otherwise squat in the LRU until
// capacity pressure evicts them).
func (c *lruCache) purge(drop func(key string) bool) int {
	n := 0
	for e := c.ll.Front(); e != nil; {
		next := e.Next()
		if ent := e.Value.(*lruEntry); drop(ent.key) {
			c.ll.Remove(e)
			delete(c.m, ent.key)
			n++
		}
		e = next
	}
	return n
}

// each calls fn with every live key, most recently used first.
func (c *lruCache) each(fn func(key string)) {
	for e := c.ll.Front(); e != nil; e = e.Next() {
		fn(e.Value.(*lruEntry).key)
	}
}
