package server

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestReloadSerializesReadAndInstall is the regression test for the
// reload read-then-install race: two concurrent reloads used to be able
// to read the file in one order and install in the other, leaving stale
// file content live at the higher version. The white-box hook pauses
// the first reload between its read and its install — with the fix, the
// second reload cannot start its read until the first has installed, so
// the newest file content always lands at the highest version.
func TestReloadSerializesReadAndInstall(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.pw")
	write := func(c string) {
		t.Helper()
		body := "@wsd\n  relation: R(1)\n  component:\n    alt: R(" + c + ")\n"
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("v1")
	s := New(Config{Workers: 1})
	if err := s.Open("db", path); err != nil {
		t.Fatal(err)
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	testHookReloadAfterRead = func(string) {
		once.Do(func() {
			close(entered)
			<-release
		})
	}
	defer func() { testHookReloadAfterRead = nil }()

	done1 := make(chan error, 1)
	go func() { done1 <- s.Reload("db") }()
	<-entered // reload 1 has parsed v1 and holds the write lock

	write("v2")
	done2 := make(chan error, 1)
	go func() { done2 <- s.Reload("db") }()
	select {
	case err := <-done2:
		t.Fatalf("second reload finished (%v) while the first was between read and install", err)
	case <-time.After(20 * time.Millisecond):
		// blocked on the write lock, as required
	}

	close(release)
	if err := <-done1; err != nil {
		t.Fatal(err)
	}
	if err := <-done2; err != nil {
		t.Fatal(err)
	}

	resp, err := s.Do(&Request{DB: "db", Op: "cert-ans"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Version != 3 {
		t.Fatalf("version after two reloads = %d, want 3", resp.Version)
	}
	if !strings.Contains(resp.Facts, "fact: v2") || strings.Contains(resp.Facts, "fact: v1") {
		t.Fatalf("stale content live at the highest version:\n%s", resp.Facts)
	}
}
