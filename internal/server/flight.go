// The flight recorder: a bounded ring of the last N requests the server
// answered, served at GET /debug/requests. Each slot stores the
// request's identity (request id, op, db, version, fingerprint), its
// outcome (status, error, cache/coalesce flags, duration), a cost
// snapshot, and — for slow or failed requests with a plan — a one-line
// plan summary. The ring is the "what just happened" complement to the
// cumulative /metrics surface: when a dashboard shows a latency spike,
// the recorder names the requests inside it, correlated to client logs
// by X-Request-Id.
//
// Storage discipline: slots hold plain values (obs.CostSnapshot, not a
// map) so steady-state recording allocates nothing per request beyond
// the strings the request already owns; the JSON shape is materialized
// only when /debug/requests is scraped.
package server

import (
	"sync"
	"time"

	"pw/internal/obs"
)

const defaultFlightSize = 128

// flightEntry is one ring slot (internal, value-typed).
type flightEntry struct {
	id        string
	t         time.Time
	op        string
	db        string
	fp        string
	version   uint64
	dur       time.Duration
	status    int
	errMsg    string
	cached    bool
	coalesced bool
	slow      bool
	cost      obs.CostSnapshot
	plan      string
}

// FlightRecord is the JSON shape of one recorded request, newest first
// in the GET /debug/requests array.
type FlightRecord struct {
	RequestID string           `json:"request_id,omitempty"`
	Time      time.Time        `json:"time"`
	Op        string           `json:"op"`
	DB        string           `json:"db,omitempty"`
	Version   uint64           `json:"version,omitempty"`
	Fp        string           `json:"fp,omitempty"`
	DurUS     int64            `json:"us"`
	Status    int              `json:"status"`
	Error     string           `json:"error,omitempty"`
	Cached    bool             `json:"cached,omitempty"`
	Coalesced bool             `json:"coalesced,omitempty"`
	Slow      bool             `json:"slow,omitempty"`
	Cost      map[string]int64 `json:"cost,omitempty"`
	Plan      string           `json:"plan,omitempty"`
}

// flightRecorder is the mutex-guarded ring. A nil recorder (FlightSize
// < 0) records nothing; all methods are nil-safe.
type flightRecorder struct {
	mu   sync.Mutex
	ring []flightEntry
	next int // slot the next record lands in
	n    int // live entries (≤ len(ring))
}

func newFlightRecorder(size int) *flightRecorder {
	if size < 0 {
		return nil
	}
	if size == 0 {
		size = defaultFlightSize
	}
	return &flightRecorder{ring: make([]flightEntry, size)}
}

func (f *flightRecorder) record(e flightEntry) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.ring[f.next] = e
	f.next = (f.next + 1) % len(f.ring)
	if f.n < len(f.ring) {
		f.n++
	}
	f.mu.Unlock()
}

func (f *flightRecorder) len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// snapshot materializes the live entries newest-first.
func (f *flightRecorder) snapshot() []FlightRecord {
	out := []FlightRecord{} // never nil: /debug/requests serves [], not null
	if f == nil {
		return out
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := 0; i < f.n; i++ {
		e := &f.ring[(f.next-1-i+len(f.ring))%len(f.ring)]
		out = append(out, FlightRecord{
			RequestID: e.id,
			Time:      e.t,
			Op:        e.op,
			DB:        e.db,
			Version:   e.version,
			Fp:        e.fp,
			DurUS:     e.dur.Microseconds(),
			Status:    e.status,
			Error:     e.errMsg,
			Cached:    e.cached,
			Coalesced: e.coalesced,
			Slow:      e.slow,
			Cost:      e.cost.Counters(),
			Plan:      e.plan,
		})
	}
	return out
}

// FlightRecords snapshots the flight recorder, newest first — the GET
// /debug/requests body. Empty (never nil) when recording is disabled.
func (s *Server) FlightRecords() []FlightRecord {
	return s.recorder.snapshot()
}
