package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	rpprof "runtime/pprof"
	"strconv"

	"pw/internal/obs"
	"pw/internal/wsdalg"
)

// Handler returns the server's HTTP API:
//
//	POST /query         one Request (JSON body) → one Response;
//	                    ?trace=1 embeds the span tree, cost counters
//	                    and request ID in the Response (success or
//	                    error); ?explain=1 embeds the EXPLAIN/ANALYZE
//	                    plan
//	POST /update?db=X   apply an @update program (request body) to a
//	                    decomposition database, bumping its version
//	                    (?trace=1 as above)
//	GET  /dbs           loaded databases (name, backend, kind, version, count)
//	GET  /stats         cache hit/miss, coalescing, in-flight and per-db counters
//	GET  /metrics       Prometheus text exposition of every counter,
//	                    gauge and histogram, including per-db families
//	POST /reload?db=X   re-read a file-backed database, bumping its version
//	GET  /healthz       liveness ("ok")
//	GET  /debug/requests flight recorder: the last N answered requests
//	                    (id, op, db, duration, status, cost), newest first
//	GET  /debug/pprof/  CPU/heap/goroutine profiles (net/http/pprof)
//	GET  /debug/vars    expvar (includes pwd's published counters)
//
// Every response carries an X-Request-Id header, and every request is
// counted into pwd_http_requests_total{path,code} (unknown paths are
// labeled "other" to bound cardinality).
//
// The profiling handlers are registered on this mux explicitly rather
// than through http.DefaultServeMux, so importing the package never
// leaks debug routes onto an unrelated server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /update", s.handleUpdate)
	mux.HandleFunc("GET /dbs", s.handleDBs)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /reload", s.handleReload)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /debug/vars", expvar.Handler())
	return s.instrument(mux)
}

// metricPaths are the routes with dedicated pwd_http_requests_total
// series; anything else counts under "other".
var metricPaths = map[string]bool{
	"/query": true, "/update": true, "/dbs": true, "/stats": true,
	"/metrics": true, "/reload": true, "/healthz": true,
	"/debug/requests": true,
}

// statusWriter captures the response status code for the HTTP counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps the mux: mint a request ID (X-Request-Id on every
// response), then count the request by path and final status code.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := s.RequestID()
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w, code: 200}
		next.ServeHTTP(sw, r.WithContext(withRequestID(r.Context(), id)))
		path := r.URL.Path
		if !metricPaths[path] {
			path = "other"
		}
		s.metrics.httpRequests.With(path, strconv.Itoa(sw.code)).Inc()
	})
}

type requestIDKey struct{}

func withRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// errorBody is the JSON shape of every non-2xx API response. A traced
// request's failure still carries its request ID, the complete
// error-annotated span tree and the cost counters spent before the
// failure — the error path is exactly when that context matters.
type errorBody struct {
	Error     string           `json:"error"`
	RequestID string           `json:"request_id,omitempty"`
	Trace     *obs.SpanNode    `json:"trace,omitempty"`
	Cost      map[string]int64 `json:"cost,omitempty"`
	// Plan is the partial EXPLAIN plan of a failed ?explain=1 request:
	// the operator tree up to and including the failing node, marked
	// with its error class — the same record pwq explain prints on a
	// refusal.
	Plan *wsdalg.Plan `json:"plan,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		// The status line is already on the wire; all that is left is
		// to say why the body is truncated (client gone, marshal bug).
		log.Printf("server: writeJSON: encode response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// writeErrorTraced is writeError plus the context the request earned:
// request ID, finished span tree and cost counters for ?trace=1, the
// partial plan for ?explain=1.
func writeErrorTraced(w http.ResponseWriter, status int, err error, tr *obs.Trace) {
	body := errorBody{Error: err.Error()}
	if tr != nil {
		body.RequestID = tr.ID()
		body.Trace = tr.Tree()
		body.Cost = tr.Cost().Counters()
	}
	var pe *PlanError
	if errors.As(err, &pe) {
		body.Plan = pe.Plan
	}
	writeJSON(w, status, body)
}

// boolParam reports whether a query parameter opted in ("1", "true",
// "yes").
func boolParam(r *http.Request, name string) bool {
	switch r.URL.Query().Get(name) {
	case "1", "true", "yes":
		return true
	}
	return false
}

// traced reports whether the request opted into per-request tracing.
func traced(r *http.Request) bool { return boolParam(r, "trace") }

// explained reports whether the request asked for an EXPLAIN plan.
func explained(r *http.Request) bool { return boolParam(r, "explain") }

// doHTTP runs one Request through the engine, honoring ?trace=1 and
// ?explain=1: a traced request gets a span tree rooted at its op, pprof
// labels (op, db — inherited by the worker goroutines the evaluation
// spawns), and the trace embedded in the Response; on failure the
// finished trace comes back alongside the error so the handler can
// embed it in the error body.
func (s *Server) doHTTP(r *http.Request, req *Request) (*Response, *obs.Trace, error) {
	opts := CallOptions{Explain: explained(r), RequestID: requestIDFrom(r.Context())}
	if !traced(r) {
		resp, err := s.DoCall(req, opts)
		return resp, nil, err
	}
	tr := obs.NewTrace(req.Op, opts.RequestID)
	opts.Trace = tr
	var resp *Response
	var err error
	labels := rpprof.Labels("pwd_op", req.Op, "pwd_db", req.DB, "pwd_request", opts.RequestID)
	rpprof.Do(r.Context(), labels, func(context.Context) {
		resp, err = s.DoCall(req, opts)
	})
	tr.Finish()
	if err != nil {
		return nil, tr, err
	}
	resp.RequestID = opts.RequestID
	resp.Trace = tr.Tree()
	resp.Cost = tr.Cost().Counters()
	return resp, tr, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, 400, badRequest("body: %v", err))
		return
	}
	resp, tr, err := s.doHTTP(r, &req)
	if err != nil {
		writeErrorTraced(w, statusFor(err), err, tr)
		return
	}
	writeJSON(w, 200, resp)
}

// handleUpdate is the raw-text write endpoint: the body is the @update
// program itself (no JSON envelope), mirroring how pwq pipes .pw files.
// The JSON-envelope path (POST /query with op "write") accepts the same
// programs via the Update field.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("db")
	if name == "" {
		writeError(w, 400, badRequest("missing db parameter"))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, 400, badRequest("body: %v", err))
		return
	}
	resp, tr, err := s.doHTTP(r, &Request{DB: name, Op: "write", Update: string(body)})
	if err != nil {
		writeErrorTraced(w, statusFor(err), err, tr)
		return
	}
	writeJSON(w, 200, resp)
}

func (s *Server) handleDBs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, 200, s.Databases())
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, 200, s.Stats())
}

func (s *Server) handleDebugRequests(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, 200, s.FlightRecords())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.WriteMetrics(w)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("db")
	if name == "" {
		writeError(w, 400, badRequest("missing db parameter"))
		return
	}
	if err := s.Reload(name); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, 200, s.Databases())
}

// PublishExpvar publishes the server's counters as expvar variables
// (visible at /debug/vars). expvar.Publish panics on duplicate names,
// so this must be called at most once per process — cmd/pwd calls it;
// tests and embedded servers read /stats instead.
func (s *Server) PublishExpvar() {
	expvar.Publish("pwd", expvar.Func(func() any { return s.Stats() }))
	expvar.Publish("pwd_dbs", expvar.Func(func() any { return s.Databases() }))
}
