package server

import (
	"encoding/json"
	"expvar"
	"io"
	"net/http"
	"net/http/pprof"
)

// Handler returns the server's HTTP API:
//
//	POST /query         one Request (JSON body) → one Response
//	POST /update?db=X   apply an @update program (request body) to a
//	                    decomposition database, bumping its version
//	GET  /dbs           loaded databases (name, backend, version, count)
//	GET  /stats         cache hit/miss, coalescing and in-flight counters
//	POST /reload?db=X   re-read a file-backed database, bumping its version
//	GET  /healthz       liveness ("ok")
//	GET  /debug/pprof/  CPU/heap/goroutine profiles (net/http/pprof)
//	GET  /debug/vars    expvar (includes pwd's published counters)
//
// The profiling handlers are registered on this mux explicitly rather
// than through http.DefaultServeMux, so importing the package never
// leaks debug routes onto an unrelated server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /update", s.handleUpdate)
	mux.HandleFunc("GET /dbs", s.handleDBs)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("POST /reload", s.handleReload)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}

// errorBody is the JSON shape of every non-2xx API response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, 400, badRequest("body: %v", err))
		return
	}
	resp, err := s.Do(&req)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, 200, resp)
}

// handleUpdate is the raw-text write endpoint: the body is the @update
// program itself (no JSON envelope), mirroring how pwq pipes .pw files.
// The JSON-envelope path (POST /query with op "write") accepts the same
// programs via the Update field.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("db")
	if name == "" {
		writeError(w, 400, badRequest("missing db parameter"))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, 400, badRequest("body: %v", err))
		return
	}
	resp, err := s.Do(&Request{DB: name, Op: "write", Update: string(body)})
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, 200, resp)
}

func (s *Server) handleDBs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, 200, s.Databases())
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, 200, s.Stats())
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("db")
	if name == "" {
		writeError(w, 400, badRequest("missing db parameter"))
		return
	}
	if err := s.Reload(name); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, 200, s.Databases())
}

// PublishExpvar publishes the server's counters as expvar variables
// (visible at /debug/vars). expvar.Publish panics on duplicate names,
// so this must be called at most once per process — cmd/pwd calls it;
// tests and embedded servers read /stats instead.
func (s *Server) PublishExpvar() {
	expvar.Publish("pwd", expvar.Func(func() any { return s.Stats() }))
	expvar.Publish("pwd_dbs", expvar.Func(func() any { return s.Databases() }))
}
