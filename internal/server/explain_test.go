// EXPLAIN and flight-recorder coverage: ?explain=1 plan attachment
// (evaluated and probe paths, cache hits), the /debug/requests ring,
// and the error-path trace contract — a 422 refusal under ?trace=1
// still returns a complete span tree annotated with the error class.
package server_test

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"pw/internal/obs"
	"pw/internal/server"
	"pw/internal/wsdalg"
)

// postRaw POSTs one /query body and returns the recorder without
// asserting the status — error-path tests read the code themselves.
func postRaw(t *testing.T, s *server.Server, target string, req *server.Request) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest("POST", target, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, r)
	return rec
}

func TestExplainQuery(t *testing.T) {
	s := newTestServer(t, server.Config{Workers: 2})
	hi := mustRead(t, hiQueryPath)
	req := &server.Request{DB: "sensors", Op: "cert-ans", Query: hi}

	resp, _ := postQuery(t, s, "/query?explain=1", req)
	if resp.Plan == nil {
		t.Fatal("?explain=1 response carries no plan")
	}
	if resp.Plan.Components <= 0 || resp.Plan.WorldCount == "" {
		t.Errorf("plan header incomplete: components=%d worlds=%q", resp.Plan.Components, resp.Plan.WorldCount)
	}
	if len(resp.Plan.Outs) != 1 || resp.Plan.Normalize == nil {
		t.Errorf("plan missing out tree or normalize stats: %+v", resp.Plan)
	}
	var units int64
	for _, n := range resp.Plan.Outs {
		if n.Act.Parts <= 0 {
			t.Errorf("out node %q has no actual parts", n.Detail)
		}
		units += n.Act.Units
	}

	// A cache hit serves the plan recorded when the entry was evaluated.
	again, _ := postQuery(t, s, "/query?explain=1", req)
	if !again.Cached {
		t.Fatal("second identical request was not a cache hit")
	}
	if again.Plan == nil || again.Plan.Components != resp.Plan.Components {
		t.Errorf("cache hit lost the stored plan: %+v", again.Plan)
	}

	// Without the flag the plan stays server-side.
	plain, _ := postQuery(t, s, "/query", req)
	if plain.Plan != nil {
		t.Error("un-explained response carries a plan")
	}
}

// TestExplainProbePlan: decomposition-native ops (no algebra
// evaluation) still answer ?explain=1, with a summary probe plan.
func TestExplainProbePlan(t *testing.T) {
	s := newTestServer(t, server.Config{Workers: 2})
	resp, _ := postQuery(t, s, "/query?explain=1", &server.Request{DB: "sensors", Op: "count"})
	if resp.Plan == nil {
		t.Fatal("?explain=1 count response carries no plan")
	}
	if resp.Plan.Query != "count" || resp.Plan.Components <= 0 || resp.Plan.WorldCount != resp.Count {
		t.Errorf("probe plan = %+v, want op count, components>0, worlds=%s", resp.Plan, resp.Count)
	}
}

func TestFlightRecorder(t *testing.T) {
	s := newTestServer(t, server.Config{Workers: 2})
	okRec := postRaw(t, s, "/query", &server.Request{DB: "sensors", Op: "count"})
	if okRec.Code != 200 {
		t.Fatalf("count: HTTP %d: %s", okRec.Code, okRec.Body.String())
	}
	errRec := postRaw(t, s, "/query", &server.Request{DB: "sensors", Op: "nope"})
	if errRec.Code != 400 {
		t.Fatalf("bad op: HTTP %d, want 400", errRec.Code)
	}

	r := httptest.NewRequest("GET", "/debug/requests", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, r)
	if rec.Code != 200 {
		t.Fatalf("GET /debug/requests: HTTP %d", rec.Code)
	}
	var records []server.FlightRecord
	if err := json.Unmarshal(rec.Body.Bytes(), &records); err != nil {
		t.Fatalf("decode flight records: %v", err)
	}
	if len(records) != 2 {
		t.Fatalf("flight recorder holds %d records, want 2", len(records))
	}
	// Newest first: the failed request, then the count.
	fail, ok := records[0], records[1]
	if fail.Op != "nope" || fail.Status != 400 || fail.Error == "" {
		t.Errorf("newest record = %+v, want the 400 nope request", fail)
	}
	if fail.RequestID != errRec.Header().Get("X-Request-Id") {
		t.Errorf("flight record id %q != X-Request-Id %q", fail.RequestID, errRec.Header().Get("X-Request-Id"))
	}
	if ok.Op != "count" || ok.Status != 200 || ok.DB != "sensors" || ok.Time.IsZero() {
		t.Errorf("older record = %+v, want the 200 count request", ok)
	}
	if ok.RequestID != okRec.Header().Get("X-Request-Id") {
		t.Errorf("flight record id %q != X-Request-Id %q", ok.RequestID, okRec.Header().Get("X-Request-Id"))
	}
}

// TestFlightRecorderBound: the ring keeps only the last FlightSize
// requests; a negative size disables recording entirely.
func TestFlightRecorderBound(t *testing.T) {
	s := newTestServer(t, server.Config{Workers: 2, FlightSize: 2})
	for i := 0; i < 5; i++ {
		postQuery(t, s, "/query", &server.Request{DB: "sensors", Op: "count"})
	}
	if n := len(s.FlightRecords()); n != 2 {
		t.Errorf("ring holds %d records, want 2", n)
	}

	off := newTestServer(t, server.Config{Workers: 2, FlightSize: -1})
	postQuery(t, off, "/query", &server.Request{DB: "sensors", Op: "count"})
	if got := off.FlightRecords(); len(got) != 0 || got == nil {
		t.Errorf("disabled recorder returned %v, want empty non-nil slice", got)
	}
}

// TestTraceOnError is the error-path regression for trace and explain
// parity: a query whose choiceof axis entangles every sensor component
// past the merge bound is refused with 422, and the ?trace=1&explain=1
// error body still carries the request ID, the complete span tree with
// the refusal class annotated on the root and the eval span, the cost
// spent before the failure, and the partial plan with its !class node.
func TestTraceOnError(t *testing.T) {
	s := newTestServer(t, server.Config{Workers: 2})
	pick := "@query pick\n  out: A = choiceof(Reading(sensor value))\n"
	rec := postRaw(t, s, "/query?trace=1&explain=1", &server.Request{DB: "sensors", Op: "cert-ans", Query: pick})
	if rec.Code != 422 {
		t.Fatalf("choiceof query: HTTP %d, want 422: %s", rec.Code, rec.Body.String())
	}
	var body struct {
		Error     string           `json:"error"`
		RequestID string           `json:"request_id"`
		Trace     *obs.SpanNode    `json:"trace"`
		Cost      map[string]int64 `json:"cost"`
		Plan      *wsdalg.Plan     `json:"plan"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("decode error body: %v", err)
	}
	if body.Error == "" || body.Trace == nil {
		t.Fatalf("422 body missing error or trace: %s", rec.Body.String())
	}
	if body.RequestID != rec.Header().Get("X-Request-Id") {
		t.Errorf("error body request_id %q != X-Request-Id %q", body.RequestID, rec.Header().Get("X-Request-Id"))
	}
	if body.Trace.Error != "entangled" {
		t.Errorf("root span error = %q, want entangled", body.Trace.Error)
	}
	var sawEval bool
	var walk func(n *obs.SpanNode)
	walk = func(n *obs.SpanNode) {
		if n.Name == "eval" {
			sawEval = true
			if n.Error != "entangled" {
				t.Errorf("eval span error = %q, want entangled", n.Error)
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(body.Trace)
	if !sawEval {
		t.Errorf("span tree has no eval span — the tree did not finish:\n%s", rec.Body.String())
	}
	if body.Cost["parse_bytes"] == 0 {
		t.Errorf("error body cost counters empty: %v", body.Cost)
	}
	if body.Plan == nil || body.Plan.Error != "entangled" {
		t.Fatalf("422 explain body must carry the partial plan with its error class: %s", rec.Body.String())
	}
}

// TestExplainOnErrorUntraced: the partial plan rides ?explain=1 even
// without ?trace=1 — the two opt-ins are independent.
func TestExplainOnErrorUntraced(t *testing.T) {
	s := newTestServer(t, server.Config{Workers: 2})
	pick := "@query pick\n  out: A = choiceof(Reading(sensor value))\n"
	rec := postRaw(t, s, "/query?explain=1", &server.Request{DB: "sensors", Op: "cert-ans", Query: pick})
	if rec.Code != 422 {
		t.Fatalf("choiceof query: HTTP %d, want 422: %s", rec.Code, rec.Body.String())
	}
	var body struct {
		Plan *wsdalg.Plan `json:"plan"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("decode error body: %v", err)
	}
	if body.Plan == nil || body.Plan.Error != "entangled" {
		t.Fatalf("untraced 422 explain body misses the partial plan: %s", rec.Body.String())
	}
}
