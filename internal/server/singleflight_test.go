package server

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestFlightGroupPanicUnwedges is the coalescing-bugfix regression: a
// panicking fn used to leave its key in-flight forever — every waiter
// blocked on a never-closed channel and the key was poisoned for the
// life of the process. Now the panic propagates to the executing
// caller, concurrent waiters fail with an error, and the key is free
// for the next call.
func TestFlightGroupPanicUnwedges(t *testing.T) {
	var g flightGroup

	const waiters = 4
	entered := make(chan struct{})
	var arrived sync.WaitGroup
	arrived.Add(waiters)

	execDone := make(chan any, 1)
	go func() {
		defer func() { execDone <- recover() }()
		g.do("k", func() (any, error) {
			close(entered)
			// Wait until every waiter has announced itself, plus a
			// grace period for the announce→block handoff inside do.
			arrived.Wait()
			time.Sleep(20 * time.Millisecond)
			panic("eval exploded")
		})
	}()

	<-entered // the key is in flight from here on
	var wg sync.WaitGroup
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arrived.Done()
			_, err, shared := g.do("k", func() (any, error) {
				t.Error("waiter must coalesce, not execute")
				return nil, nil
			})
			if !shared {
				t.Error("waiter ran its own fn")
			}
			errs[i] = err
		}(i)
	}

	if r := <-execDone; r == nil || r != "eval exploded" {
		t.Fatalf("executing caller recovered %v, want the original panic value", r)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Fatalf("waiter %d error = %v, want a shared-call-panicked error", i, err)
		}
	}

	// The key must be free again: a fresh call executes normally.
	val, err, shared := g.do("k", func() (any, error) { return 42, nil })
	if err != nil || shared || val != 42 {
		t.Fatalf("post-panic call = (%v, %v, shared=%v), want (42, nil, false)", val, err, shared)
	}
}

// TestFlightGroupPanicThroughServer drives the panic through a real
// coalesced eval: a query evaluation that panics must not wedge the
// next identical request.
func TestFlightGroupPanicThroughServer(t *testing.T) {
	var g flightGroup
	boom := true
	call := func() (val any, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = nil
				val = "recovered-at-caller"
			}
		}()
		v, derr, _ := g.do("q", func() (any, error) {
			if boom {
				boom = false
				panic("first eval dies")
			}
			return "answer", nil
		})
		return v, derr
	}
	if v, _ := call(); v != "recovered-at-caller" {
		t.Fatalf("first call = %v, want the panic to reach its caller", v)
	}
	v, err := call()
	if err != nil || v != "answer" {
		t.Fatalf("second call = (%v, %v), want the key unpoisoned", v, err)
	}
}
