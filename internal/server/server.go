// Package server is the long-running query engine behind cmd/pwd: it
// loads .pw databases once, keeps normalized world-set decompositions
// (and their interned fact tables) resident in memory, and answers the
// pwq command set — memb/uniq/poss/cert/count/sample/poss-ans/cert-ans/
// cont — to many concurrent clients over HTTP/JSON.
//
// The performance core is three layers, applied in order on every
// query-shaped request:
//
//  1. prepared queries — the @query text is parsed and compiled once
//     per distinct text (an LRU keyed by the raw text) and the compiled
//     plan's canonical printed form is the query fingerprint, so two
//     spellings of the same algebra share everything downstream;
//  2. an answer cache — normalized answer decompositions (and the
//     answer instances read off them) are cached in an LRU keyed by
//     (database version, query fingerprint), so a repeated cert-ans or
//     poss-ans skips wsdalg.Eval entirely;
//  3. request batching + admission control — concurrent identical
//     uncached queries coalesce into one evaluation (a singleflight
//     group keyed like the cache), and all heavy evaluations pass
//     through a semaphore sized by Config.Workers, so a burst of
//     expensive containment queries queues behind the pool while cheap
//     decomposition-native fact probes (MEMB/POSS/CERT/count on a
//     loaded WSD) bypass it and stay at microsecond latency.
//
// Lock discipline: the Server's own RWMutex guards only the name →
// database map; each database carries its own RWMutex guarding the
// {backend, version} pair plus a writeMu serializing mutations. Request
// handling takes the database read lock just long enough to snapshot
// that pair, then evaluates outside any lock — the loaded backends are
// immutable after normalization, and the write path preserves that:
// an @update is applied copy-on-write against the snapshot (readers
// keep serving the old version throughout) and the result is installed
// as a new version in one short critical section. Because every cache
// and singleflight key embeds the version, stale answers are never
// served after a reload or write; entries keyed on dead versions are
// purged from the answer cache at install time.
package server

import (
	"errors"
	"fmt"
	"io"
	"math/big"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pw/internal/algebra"
	"pw/internal/decide"
	"pw/internal/gen"
	"pw/internal/obs"
	"pw/internal/parse"
	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/table"
	"pw/internal/worlds"
	"pw/internal/wsd"
	"pw/internal/wsdalg"
)

// Config tunes a Server. The zero value is a sensible default.
type Config struct {
	// Workers is the decide.Options goroutine budget of the heavy
	// procedures and, equally, the admission-control pool size: at most
	// this many heavy evaluations (query evaluation, c-table decision
	// procedures, world counting) run concurrently; the rest queue.
	// 0 means GOMAXPROCS.
	Workers int
	// CacheSize bounds the answer cache (entries). 0 means 256; a
	// negative value disables answer caching (every request evaluates,
	// though identical in-flight requests still coalesce).
	CacheSize int
	// PreparedSize bounds the prepared-query cache (entries). 0 means
	// 512; a negative value disables it (every request re-parses).
	PreparedSize int
	// SlowQueryThreshold enables the slow-query log: every request
	// taking at least this long is logged with its op, database,
	// canonical query fingerprint and cost counters. 0 disables it.
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives slow-query lines (os.Stderr when nil and a
	// threshold is set).
	SlowQueryLog io.Writer
	// FlightSize bounds the flight recorder, the ring of recently
	// answered requests served at GET /debug/requests. 0 means 128; a
	// negative value disables recording.
	FlightSize int
}

const (
	defaultCacheSize    = 256
	defaultPreparedSize = 512
)

// Server is a resident multi-database query engine. Safe for concurrent
// use by any number of goroutines.
type Server struct {
	workers int
	sem     chan struct{}

	mu  sync.RWMutex // guards dbs (the map, not the databases)
	dbs map[string]*database

	cacheMu  sync.Mutex // guards prepared and answers
	prepared *lruCache
	answers  *lruCache

	flight flightGroup
	stats  stats

	metrics       *serverMetrics
	slowThreshold time.Duration
	slowLog       io.Writer
	recorder      *flightRecorder
	idBase        string
	idSeq         atomic.Uint64
}

// database is one loaded .pw database. mu guards the {wsd, tab,
// version} triple; exactly one of wsd/tab is non-nil. writeMu
// serializes the slow half of every mutation (file re-parse, update
// application) so concurrent reloads and writes cannot interleave their
// read-compute-install sequences; it is always acquired before mu and
// never held while answering queries, so readers keep snapshotting the
// current version through db.mu alone.
type database struct {
	name string
	path string // "" for databases registered in-memory

	writeMu sync.Mutex

	mu      sync.RWMutex
	version uint64
	wsd     *wsd.WSD
	tab     *table.Database

	// Per-database answer-cache traffic, surfaced by /stats and the
	// per-db /metrics families (the aggregate counters hide which
	// database's cache is churning).
	ansHits   atomic.Int64
	ansMisses atomic.Int64

	// count memoizes wsd.Count().String() for the installed version so
	// per-request explain records don't redo the big-int product.
	count atomic.Pointer[countCache]
}

// countCache is one memoized world count, valid while the database is
// still at the version it was computed against.
type countCache struct {
	version uint64
	count   string
}

// dbView is an immutable snapshot of a database taken under its read
// lock; evaluation happens against the snapshot, outside any lock.
type dbView struct {
	name    string
	version uint64
	wsd     *wsd.WSD
	tab     *table.Database
	db      *database // for per-db cache attribution; never nil from view()
}

// stats are the server's own counters, exposed at /stats and (in pwd)
// through expvar.
type stats struct {
	Requests       atomic.Int64
	Errors         atomic.Int64
	PreparedHits   atomic.Int64
	PreparedMisses atomic.Int64
	AnswerHits     atomic.Int64
	AnswerMisses   atomic.Int64
	Coalesced      atomic.Int64
	InFlightEvals  atomic.Int64
}

// Stats is a point-in-time snapshot of the server counters, including
// the per-database breakdown.
type Stats struct {
	Requests       int64     `json:"requests"`
	Errors         int64     `json:"errors"`
	PreparedHits   int64     `json:"prepared_hits"`
	PreparedMisses int64     `json:"prepared_misses"`
	AnswerHits     int64     `json:"answer_hits"`
	AnswerMisses   int64     `json:"answer_misses"`
	Coalesced      int64     `json:"coalesced"`
	InFlightEvals  int64     `json:"in_flight_evals"`
	AnswerEntries  int       `json:"answer_entries"`
	PreparedCached int       `json:"prepared_entries"`
	DBs            []DBStats `json:"dbs,omitempty"`
}

// DBStats is one database's slice of the server counters: its installed
// version, the resident backend kind, and the answer-cache traffic
// attributed to it.
type DBStats struct {
	Name          string `json:"name"`
	Version       uint64 `json:"version"`
	Backend       string `json:"backend"` // "wsd" or "table"
	Kind          string `json:"kind"`    // "tuple", "attr", or "table"
	AnswerHits    int64  `json:"answer_hits"`
	AnswerMisses  int64  `json:"answer_misses"`
	AnswerEntries int    `json:"answer_entries"`
}

// backendKind classifies a database's resident representation: "table"
// for conditioned tables, and for decompositions "attr" when any
// component is an attribute-level template, else "tuple".
func backendKind(w *wsd.WSD, tab *table.Database) (backend, kind string) {
	if w == nil {
		return "table", "table"
	}
	for ci := 0; ci < w.Components(); ci++ {
		if _, _, ok := w.TemplateSlots(ci); ok {
			return "wsd", "attr"
		}
	}
	return "wsd", "tuple"
}

// DBStats snapshots the per-database counters, sorted by name.
func (s *Server) DBStats() []DBStats {
	s.mu.RLock()
	dbs := make([]*database, 0, len(s.dbs))
	for _, db := range s.dbs {
		dbs = append(dbs, db)
	}
	s.mu.RUnlock()

	// Live answer-cache entries per database: the cache key embeds the
	// database name as its second \x00-separated field.
	entries := make(map[string]int, len(dbs))
	s.cacheMu.Lock()
	s.answers.each(func(key string) {
		parts := strings.SplitN(key, "\x00", 3)
		if len(parts) >= 2 {
			entries[parts[1]]++
		}
	})
	s.cacheMu.Unlock()

	out := make([]DBStats, 0, len(dbs))
	for _, db := range dbs {
		db.mu.RLock()
		version, w, tab := db.version, db.wsd, db.tab
		db.mu.RUnlock()
		backend, kind := backendKind(w, tab)
		out = append(out, DBStats{
			Name:          db.name,
			Version:       version,
			Backend:       backend,
			Kind:          kind,
			AnswerHits:    db.ansHits.Load(),
			AnswerMisses:  db.ansMisses.Load(),
			AnswerEntries: entries[db.name],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// New returns a Server with no databases loaded.
func New(cfg Config) *Server {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cacheSize := cfg.CacheSize
	if cacheSize == 0 {
		cacheSize = defaultCacheSize
	}
	preparedSize := cfg.PreparedSize
	if preparedSize == 0 {
		preparedSize = defaultPreparedSize
	}
	slowLog := cfg.SlowQueryLog
	if slowLog == nil && cfg.SlowQueryThreshold > 0 {
		slowLog = os.Stderr
	}
	s := &Server{
		workers:       workers,
		sem:           make(chan struct{}, workers),
		dbs:           make(map[string]*database),
		prepared:      newLRU(preparedSize),
		answers:       newLRU(cacheSize),
		slowThreshold: cfg.SlowQueryThreshold,
		slowLog:       slowLog,
		recorder:      newFlightRecorder(cfg.FlightSize),
		idBase:        fmt.Sprintf("%06x", rand.Int31n(1<<24)),
	}
	s.metrics = newServerMetrics(s)
	return s
}

// Workers reports the effective worker/admission pool size.
func (s *Server) Workers() int { return s.workers }

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	s.cacheMu.Lock()
	ansN, prepN := s.answers.len(), s.prepared.len()
	s.cacheMu.Unlock()
	return Stats{
		Requests:       s.stats.Requests.Load(),
		Errors:         s.stats.Errors.Load(),
		PreparedHits:   s.stats.PreparedHits.Load(),
		PreparedMisses: s.stats.PreparedMisses.Load(),
		AnswerHits:     s.stats.AnswerHits.Load(),
		AnswerMisses:   s.stats.AnswerMisses.Load(),
		Coalesced:      s.stats.Coalesced.Load(),
		InFlightEvals:  s.stats.InFlightEvals.Load(),
		AnswerEntries:  ansN,
		PreparedCached: prepN,
		DBs:            s.DBStats(),
	}
}

// AddWSD registers an in-memory decomposition under name. The
// decomposition is normalized here (the one mutation) and must not be
// mutated by the caller afterwards.
func (s *Server) AddWSD(name string, w *wsd.WSD) error {
	if err := w.Normalize(); err != nil {
		return fmt.Errorf("normalize %s: %w", name, err)
	}
	return s.register(&database{name: name, version: 1, wsd: w})
}

// AddTables registers an in-memory conditioned-table database under
// name. The database must not be mutated by the caller afterwards.
func (s *Server) AddTables(name string, d *table.Database) error {
	return s.register(&database{name: name, version: 1, tab: d})
}

// Open loads a .pw database file (either backend) under name.
func (s *Server) Open(name, path string) error {
	db := &database{name: name, path: path, version: 1}
	if err := loadInto(db, path); err != nil {
		return err
	}
	return s.register(db)
}

// testHookReloadAfterRead, when non-nil, runs after a reload has parsed
// the file but before it installs the result — with writeMu held. Tests
// use it to prove reloads serialize: a second reload started during the
// hook must observe the first one's install.
var testHookReloadAfterRead func(name string)

// Reload re-reads a file-backed database and installs the fresh backend
// under the write lock, bumping the version. Every answer cached
// against the old version becomes unreachable at that instant and is
// purged from the answer cache. Concurrent reloads of one database are
// serialized by its writeMu: without it, two reloads could each read
// the file and then install in the opposite order, leaving the older
// file content live at the higher version.
func (s *Server) Reload(name string) error {
	s.mu.RLock()
	db := s.dbs[name]
	s.mu.RUnlock()
	if db == nil {
		return &Error{Status: 404, Err: fmt.Errorf("unknown database %q", name)}
	}
	if db.path == "" {
		return &Error{Status: 400, Err: fmt.Errorf("database %q is in-memory and cannot be reloaded", name)}
	}
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	fresh := &database{name: name, path: db.path}
	if err := loadInto(fresh, db.path); err != nil {
		return err
	}
	if testHookReloadAfterRead != nil {
		testHookReloadAfterRead(name)
	}
	db.mu.Lock()
	db.wsd, db.tab = fresh.wsd, fresh.tab
	db.version++
	live := db.version
	db.mu.Unlock()
	s.purgeStale(name, live)
	return nil
}

// purgeStale drops every answer-cache entry that references database
// name at a version other than live — both entries keyed directly on
// the database and cont entries embedding it as the superset side.
func (s *Server) purgeStale(name string, live uint64) {
	current := strconv.FormatUint(live, 10)
	s.cacheMu.Lock()
	purged := s.answers.purge(func(key string) bool {
		// Key layout: kind \x00 db \x00 version \x00 rest; cont keys embed
		// db2 \x00 version2 at the head of rest.
		parts := strings.SplitN(key, "\x00", 4)
		if len(parts) < 4 {
			return false
		}
		if parts[1] == name && parts[2] != current {
			return true
		}
		if parts[0] == "cont" {
			rest := strings.SplitN(parts[3], "\x00", 3)
			if len(rest) >= 2 && rest[0] == name && rest[1] != current {
				return true
			}
		}
		return false
	})
	s.cacheMu.Unlock()
	s.metrics.ansPurged.Add(uint64(purged))
}

func loadInto(db *database, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	src, err := parse.ParseSource(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	switch {
	case src.WSD != nil:
		// ParseWSD normalizes on the way in; Normalize here is the
		// explicit share-across-goroutines handshake and a no-op.
		if err := src.WSD.Normalize(); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		db.wsd = src.WSD
	case src.DB != nil:
		db.tab = src.DB
	default:
		return fmt.Errorf("%s is a @query file, not a database", path)
	}
	return nil
}

func (s *Server) register(db *database) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.dbs[db.name]; dup {
		return fmt.Errorf("database %q already loaded", db.name)
	}
	s.dbs[db.name] = db
	return nil
}

// view snapshots a database's backend and version under its read lock.
func (s *Server) view(name string) (dbView, error) {
	s.mu.RLock()
	db := s.dbs[name]
	s.mu.RUnlock()
	if db == nil {
		return dbView{}, &Error{Status: 404, Err: fmt.Errorf("unknown database %q", name)}
	}
	db.mu.RLock()
	v := dbView{name: db.name, version: db.version, wsd: db.wsd, tab: db.tab, db: db}
	db.mu.RUnlock()
	return v, nil
}

// DBInfo describes one loaded database for the /dbs listing.
type DBInfo struct {
	Name    string `json:"name"`
	Path    string `json:"path,omitempty"`
	Version uint64 `json:"version"`
	Backend string `json:"backend"` // "wsd" or "table"
	Kind    string `json:"kind"`    // "tuple", "attr", or "table"
	Count   string `json:"count,omitempty"`
}

// Databases lists the loaded databases, sorted by name. Counts are
// reported only for decompositions, where they are O(components).
func (s *Server) Databases() []DBInfo {
	s.mu.RLock()
	out := make([]DBInfo, 0, len(s.dbs))
	for _, db := range s.dbs {
		db.mu.RLock()
		info := DBInfo{Name: db.name, Path: db.path, Version: db.version}
		info.Backend, info.Kind = backendKind(db.wsd, db.tab)
		if db.wsd != nil {
			info.Count = db.wsd.Count().String()
		}
		db.mu.RUnlock()
		out = append(out, info)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Error is a request-level failure with an HTTP status classification.
type Error struct {
	Status int
	Err    error
}

func (e *Error) Error() string { return e.Err.Error() }
func (e *Error) Unwrap() error { return e.Err }

func badRequest(format string, args ...any) *Error {
	return &Error{Status: 400, Err: fmt.Errorf(format, args...)}
}

// statusFor classifies an error for the HTTP layer: explicit *Error
// statuses pass through; queries outside a backend's decidable fragment
// are 422 (unprocessable, resubmitting won't help); anything else is a
// 400-class input problem (this server computes on trusted resident
// data — evaluation errors stem from the request's query or payload).
func statusFor(err error) int {
	var se *Error
	if errors.As(err, &se) {
		return se.Status
	}
	if errors.Is(err, wsdalg.ErrUnsupported) || errors.Is(err, wsdalg.ErrEntangled) ||
		errors.Is(err, wsd.ErrInfiniteRep) || errors.Is(err, algebra.ErrWorldSetOp) {
		return 422
	}
	return 400
}

// Request is one query-server request (the POST /query body).
type Request struct {
	DB     string `json:"db"`
	Op     string `json:"op"`
	Query  string `json:"query,omitempty"`  // @query text for poss-ans/cert-ans, or the -db view for cont
	Query2 string `json:"query2,omitempty"` // the -db2 view for cont
	DB2    string `json:"db2,omitempty"`    // superset database for cont
	Inst   string `json:"inst,omitempty"`   // .pw instance text for memb/uniq
	Facts  string `json:"facts,omitempty"`  // .pw instance text for poss/cert
	Update string `json:"update,omitempty"` // @update text for write
	N      int    `json:"n,omitempty"`      // sample count (default 1)
	Seed   int64  `json:"seed,omitempty"`   // sample seed (0 means the documented default)
}

// Response is the answer to one Request.
type Response struct {
	DB      string   `json:"db,omitempty"`
	Op      string   `json:"op"`
	Version uint64   `json:"version,omitempty"`
	Answer  *bool    `json:"answer,omitempty"` // memb/uniq/poss/cert/cont
	Count   string   `json:"count,omitempty"`  // count (decimal, exact)
	Facts   string   `json:"facts,omitempty"`  // poss-ans/cert-ans (.pw instance text)
	Worlds  []string `json:"worlds,omitempty"` // sample (.pw instance texts)
	// Cached reports the answer was served from the answer cache with no
	// evaluation this request; Coalesced that it piggybacked on another
	// request's in-flight evaluation.
	Cached    bool `json:"cached,omitempty"`
	Coalesced bool `json:"coalesced,omitempty"`
	// RequestID, Trace and Cost are filled by the HTTP layer on ?trace=1
	// requests: the span tree and the nonzero cost counters recorded
	// while answering this request.
	RequestID string           `json:"request_id,omitempty"`
	Trace     *obs.SpanNode    `json:"trace,omitempty"`
	Cost      map[string]int64 `json:"cost,omitempty"`
	// Plan is the EXPLAIN/ANALYZE record attached on ?explain=1 (or
	// CallOptions.Explain): per-operator estimates and actuals for
	// evaluated queries, a summary probe plan for decomposition-native
	// ops. A cached answer carries the plan recorded when its cache
	// entry was evaluated, not a fresh one.
	Plan *wsdalg.Plan `json:"plan,omitempty"`
}

// CallOptions modulate one Do call: an optional trace to record spans
// and cost into, whether to attach an EXPLAIN plan to the response, and
// the request ID to correlate the flight-recorder entry and slow-query
// line with (the HTTP layer passes the X-Request-Id it minted; direct
// callers may leave it empty).
type CallOptions struct {
	Trace     *obs.Trace
	Explain   bool
	RequestID string
}

// Do answers one request. It is the transport-independent core the HTTP
// layer (and the benchmarks, and the difftest backend) call.
func (s *Server) Do(req *Request) (*Response, error) {
	return s.DoCall(req, CallOptions{})
}

// DoTraced answers one request with an optional trace attached: spans
// and cost counters record into tr (nil tr: exactly Do, except that
// cost counters still accumulate into a request-local sink so the
// slow-query log can report them).
func (s *Server) DoTraced(req *Request, tr *obs.Trace) (*Response, error) {
	return s.DoCall(req, CallOptions{Trace: tr})
}

// DoCall answers one request under explicit CallOptions. Every request
// lands one entry in the flight recorder; failures additionally mark
// the trace root with the error class so an error response still
// carries a complete, annotated span tree.
func (s *Server) DoCall(req *Request, opts CallOptions) (*Response, error) {
	rc := newReqCtx(opts.Trace)
	rc.explain = opts.Explain
	rc.id = opts.RequestID
	start := time.Now()
	s.stats.Requests.Add(1)
	op := s.metrics.op(req.Op)
	s.metrics.requests[op].Inc()
	if opts.Explain {
		s.metrics.explain.Inc()
	}
	resp, err := s.dispatch(req, rc)
	if err != nil {
		s.stats.Errors.Add(1)
		s.metrics.errors[op].Inc()
		rc.tr.Root().SetError(errorClass(err))
	}
	dur := time.Since(start)
	s.metrics.latency[op].Observe(dur.Seconds())
	if rc.explain && resp != nil {
		resp.Plan = rc.plan
	}
	s.recordFlight(req, rc, dur, err, resp)
	s.maybeLogSlow(req, rc, dur, err)
	if err != nil && rc.explain && rc.plan != nil {
		// ?explain=1 parity on the error path: the partial plan (error
		// class marked at the failing node) rides the error the same
		// way the span tree rides a traced failure.
		err = &PlanError{Err: err, Plan: rc.plan}
	}
	return resp, err
}

// PlanError carries the partial EXPLAIN plan of a failed explain
// request alongside the underlying error; errors.Is/As see through it.
type PlanError struct {
	Err  error
	Plan *wsdalg.Plan
}

func (e *PlanError) Error() string { return e.Err.Error() }
func (e *PlanError) Unwrap() error { return e.Err }

// errorClass names an error for span annotations, flight records and
// the slow-query log: the evaluator's refusal classes, the
// representation-system limit, or the HTTP status family.
func errorClass(err error) string {
	if err == nil {
		return ""
	}
	if errors.Is(err, wsd.ErrInfiniteRep) {
		return "infinite_rep"
	}
	if c := wsdalg.ErrorClass(err); c != "error" {
		return c
	}
	var se *Error
	if errors.As(err, &se) {
		return fmt.Sprintf("http_%d", se.Status)
	}
	return "error"
}

// recordFlight lands one entry in the flight recorder (no-op when
// recording is disabled). Slow and failed requests keep a one-line plan
// summary when evaluation produced one.
func (s *Server) recordFlight(req *Request, rc *reqCtx, dur time.Duration, err error, resp *Response) {
	if s.recorder == nil {
		return
	}
	e := flightEntry{
		id:     rc.id,
		t:      time.Now(),
		op:     req.Op,
		db:     req.DB,
		fp:     rc.fp,
		dur:    dur,
		status: 200,
		cost:   rc.cost.Snapshot(),
	}
	if resp != nil {
		e.version, e.cached, e.coalesced = resp.Version, resp.Cached, resp.Coalesced
	}
	if err != nil {
		e.status, e.errMsg = statusFor(err), err.Error()
	}
	e.slow = s.slowThreshold > 0 && dur >= s.slowThreshold
	if e.slow || err != nil {
		e.plan = planSummary(rc.plan)
	}
	s.recorder.record(e)
	s.metrics.flightRecords.Inc()
}

// planSummary compresses a plan to one line for ring slots and log
// lines (the full tree stays behind ?explain=1 / pwq explain).
func planSummary(p *wsdalg.Plan) string {
	if p == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s components=%d", p.Query, p.Components)
	if p.WorldCount != "" {
		fmt.Fprintf(&b, " worlds=%s", p.WorldCount)
	}
	if p.Error != "" {
		fmt.Fprintf(&b, " !%s", p.Error)
	}
	if n := p.Assemble; n != nil && n.Act.MergeSpace > 0 {
		fmt.Fprintf(&b, " assemble_merge=%d", n.Act.MergeSpace)
	}
	fmt.Fprintf(&b, " us=%d", p.DurUS)
	return b.String()
}

func (s *Server) dispatch(req *Request, rc *reqCtx) (*Response, error) {
	if req.DB == "" {
		return nil, badRequest("missing db")
	}
	if req.Op == "write" {
		return s.opWrite(req, rc)
	}
	v, err := s.view(req.DB)
	if err != nil {
		return nil, err
	}
	resp := &Response{DB: v.name, Op: req.Op, Version: v.version}
	start := time.Now()
	var out *Response
	switch req.Op {
	case "memb":
		out, err = s.opMemb(req, v, resp, rc)
	case "uniq":
		out, err = s.opUniq(req, v, resp, rc)
	case "poss", "cert":
		out, err = s.opPossCert(req, v, resp, rc)
	case "count":
		out, err = s.opCount(v, resp, rc)
	case "sample":
		out, err = s.opSample(req, v, resp, rc)
	case "poss-ans", "cert-ans":
		out, err = s.opAnswers(req, v, resp, rc)
	case "cont":
		out, err = s.opCont(req, v, resp, rc)
	case "":
		return nil, badRequest("missing op")
	default:
		return nil, badRequest("unknown op %q", req.Op)
	}
	// Decomposition-native ops never run the evaluator; on explain they
	// get a summary probe plan (input size, exact world count, wall
	// time) so ?explain=1 is meaningful on every op. Evaluated paths
	// already filled rc.plan with the real operator tree.
	if err == nil && rc.explain && rc.plan == nil && v.wsd != nil {
		rc.plan = probePlan(req.Op, v, time.Since(start))
	}
	return out, err
}

// probePlan is the explain record of a decomposition-native op that
// answered straight off the resident WSD, with no algebra evaluation.
func probePlan(op string, v dbView, dur time.Duration) *wsdalg.Plan {
	return &wsdalg.Plan{
		Query:      op,
		Components: int64(v.wsd.Components()),
		WorldCount: v.worldCount(),
		DurUS:      dur.Microseconds(),
	}
}

// worldCount is v.wsd.Count().String() memoized per installed version
// (the decomposition snapshotted by a view never changes, so the count
// computed once is good for every request until the next install).
func (v dbView) worldCount() string {
	if v.db != nil {
		if c := v.db.count.Load(); c != nil && c.version == v.version {
			return c.count
		}
	}
	s := v.wsd.Count().String()
	if v.db != nil {
		v.db.count.Store(&countCache{version: v.version, count: s})
	}
	return s
}

// acquire blocks until an admission slot frees up. Heavy procedures —
// anything that evaluates a query, runs a c-table decision search, or
// counts by enumeration — pass through here; decomposition-native fact
// probes do not, so they cannot be starved by expensive traffic. The
// wait is recorded three ways: a span on the trace, the request's
// SemWaitNanos counter, and the process-wide wait histogram.
func (s *Server) acquire(rc *reqCtx) func() {
	sp := rc.span("admission")
	start := time.Now()
	s.sem <- struct{}{}
	wait := time.Since(start)
	sp.End()
	rc.cost.Add(obs.SemWaitNanos, wait.Nanoseconds())
	s.metrics.semWait.Observe(wait.Seconds())
	s.stats.InFlightEvals.Add(1)
	s.metrics.inflight.Add(1)
	return func() {
		s.stats.InFlightEvals.Add(-1)
		s.metrics.inflight.Add(-1)
		<-s.sem
	}
}

func (s *Server) opts(rc *reqCtx) decide.Options {
	return decide.Options{Workers: s.workers, Cost: rc.cost}
}

func parseInstanceText(field, text string, rc *reqCtx) (*rel.Instance, error) {
	if text == "" {
		return nil, badRequest("missing %s", field)
	}
	sp := rc.span("parse")
	inst, err := parse.ParseInstanceObserved(strings.NewReader(text), rc.cost)
	sp.End()
	if err != nil {
		return nil, badRequest("%s: %v", field, err)
	}
	return inst, nil
}

func printInstance(inst *rel.Instance) (string, error) {
	var b strings.Builder
	if err := parse.PrintInstance(&b, inst); err != nil {
		return "", err
	}
	return b.String(), nil
}

func yes(resp *Response, v bool) *Response { resp.Answer = &v; return resp }

func (s *Server) opMemb(req *Request, v dbView, resp *Response, rc *reqCtx) (*Response, error) {
	inst, err := parseInstanceText("inst", req.Inst, rc)
	if err != nil {
		return nil, err
	}
	if v.wsd != nil {
		sp := rc.span("probe")
		defer sp.End()
		return yes(resp, v.wsd.Member(inst)), nil
	}
	defer s.acquire(rc)()
	sp := rc.span("decide")
	defer sp.End()
	ok, err := s.opts(rc).Membership(inst, query.Identity{}, v.tab)
	if err != nil {
		return nil, err
	}
	return yes(resp, ok), nil
}

func (s *Server) opUniq(req *Request, v dbView, resp *Response, rc *reqCtx) (*Response, error) {
	inst, err := parseInstanceText("inst", req.Inst, rc)
	if err != nil {
		return nil, err
	}
	if v.wsd != nil {
		sp := rc.span("probe")
		defer sp.End()
		one := v.wsd.Count().Cmp(big.NewInt(1)) == 0
		return yes(resp, one && v.wsd.Member(inst)), nil
	}
	defer s.acquire(rc)()
	sp := rc.span("decide")
	defer sp.End()
	ok, err := s.opts(rc).Uniqueness(query.Identity{}, v.tab, inst)
	if err != nil {
		return nil, err
	}
	return yes(resp, ok), nil
}

func (s *Server) opPossCert(req *Request, v dbView, resp *Response, rc *reqCtx) (*Response, error) {
	facts, err := parseInstanceText("facts", req.Facts, rc)
	if err != nil {
		return nil, err
	}
	if v.wsd != nil {
		sp := rc.span("probe")
		defer sp.End()
		if req.Op == "poss" {
			return yes(resp, v.wsd.Possible(facts)), nil
		}
		return yes(resp, v.wsd.Certain(facts)), nil
	}
	defer s.acquire(rc)()
	sp := rc.span("decide")
	defer sp.End()
	var ok bool
	if req.Op == "poss" {
		ok, err = s.opts(rc).Possible(facts, query.Identity{}, v.tab)
	} else {
		ok, err = s.opts(rc).Certain(facts, query.Identity{}, v.tab)
	}
	if err != nil {
		return nil, err
	}
	return yes(resp, ok), nil
}

func (s *Server) opCount(v dbView, resp *Response, rc *reqCtx) (*Response, error) {
	if v.wsd != nil {
		sp := rc.span("probe")
		defer sp.End()
		resp.Count = v.worldCount()
		return resp, nil
	}
	key := cacheKey("count", v.name, v.version, "")
	n, cached, coalesced, err := s.cachedEval(v.db, key, rc, func() (any, error) {
		defer s.acquire(rc)()
		sp := rc.span("count")
		defer sp.End()
		return worlds.Options{Workers: s.workers}.Count(v.tab), nil
	})
	if err != nil {
		return nil, err
	}
	resp.Count = strconv.Itoa(n.(int))
	resp.Cached, resp.Coalesced = cached, coalesced
	return resp, nil
}

// defaultSampleSeed is the seed used when a sample request omits the
// field (JSON zero value). It is deliberately not a small seed a client
// would plausibly pick: the old behavior coerced 0 to 1, silently
// aliasing the default onto the explicit seed=1 stream so the two
// requests drew identical worlds.
const defaultSampleSeed = 0x705753_1987 // "pw" / the paper's year

func (s *Server) opSample(req *Request, v dbView, resp *Response, rc *reqCtx) (*Response, error) {
	n := req.N
	if n == 0 {
		n = 1
	}
	if n < 0 || n > 1000 {
		return nil, badRequest("n must be in [1, 1000]")
	}
	seed := req.Seed
	if seed == 0 {
		seed = defaultSampleSeed
	}
	rng := rand.New(rand.NewSource(seed))
	for k := 0; k < n; k++ {
		var inst *rel.Instance
		if v.wsd != nil {
			if inst = v.wsd.Sample(rng); inst == nil {
				return nil, badRequest("cannot sample from the empty world set")
			}
		} else {
			release := s.acquire(rc)
			var ok bool
			inst, ok = gen.MemberInstance(seed+int64(k), v.tab)
			release()
			if !ok {
				return nil, badRequest("no member world found within the sampling budget; try a different seed")
			}
		}
		text, err := printInstance(inst)
		if err != nil {
			return nil, err
		}
		resp.Worlds = append(resp.Worlds, text)
	}
	return resp, nil
}

// opWrite applies an @update program to a decomposition-backed database
// and installs the result as a new version. The slow half — parsing the
// program and the incremental renormalization — runs under the
// database's writeMu only, so concurrent readers keep answering against
// the pre-update snapshot (ApplyUpdate is copy-on-write: the installed
// result shares untouched components with the old version, which is
// never mutated). The install itself is one short critical section
// under db.mu, after which cache entries for dead versions are purged.
func (s *Server) opWrite(req *Request, rc *reqCtx) (*Response, error) {
	if req.Update == "" {
		return nil, badRequest("missing update")
	}
	sp := rc.span("parse")
	u, err := parse.ParseUpdateObserved(strings.NewReader(req.Update), rc.cost)
	sp.End()
	if err != nil {
		return nil, badRequest("update: %v", err)
	}
	s.mu.RLock()
	db := s.dbs[req.DB]
	s.mu.RUnlock()
	if db == nil {
		return nil, &Error{Status: 404, Err: fmt.Errorf("unknown database %q", req.DB)}
	}
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	db.mu.RLock()
	base := db.wsd
	db.mu.RUnlock()
	if base == nil {
		return nil, &Error{Status: 422, Err: fmt.Errorf(
			"database %q is table-backed; updates need a decomposition (@wsd) database", req.DB)}
	}
	release := s.acquire(rc)
	sp = rc.span("apply-update")
	next, err := base.ApplyUpdateObserved(u, rc.cost)
	sp.End()
	release()
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	db.wsd = next
	db.version++
	live := db.version
	db.mu.Unlock()
	s.purgeStale(req.DB, live)
	resp := &Response{DB: req.DB, Op: "write", Version: live}
	resp.Count = next.Count().String()
	return resp, nil
}

// prepared is one compiled query: the parsed algebra plan plus its
// canonical fingerprint (the plan's printed form, so equivalent
// spellings share one answer-cache line).
type preparedQuery struct {
	q  query.Algebra
	fp string
}

// prepare compiles @query text through the prepared-query cache.
func (s *Server) prepare(text string, rc *reqCtx) (*preparedQuery, error) {
	s.cacheMu.Lock()
	if v, ok := s.prepared.get(text); ok {
		s.cacheMu.Unlock()
		s.stats.PreparedHits.Add(1)
		s.metrics.prepHits.Inc()
		return v.(*preparedQuery), nil
	}
	s.cacheMu.Unlock()
	s.stats.PreparedMisses.Add(1)
	s.metrics.prepMisses.Inc()
	sp := rc.span("prepare")
	defer sp.End()
	src, err := parse.ParseSourceObserved(strings.NewReader(text), rc.cost)
	if err != nil {
		return nil, badRequest("query: %v", err)
	}
	if src.Query == nil {
		return nil, badRequest("query text does not contain a @query block")
	}
	var b strings.Builder
	if err := parse.PrintQuery(&b, *src.Query); err != nil {
		return nil, badRequest("query: %v", err)
	}
	p := &preparedQuery{q: *src.Query, fp: b.String()}
	s.cacheMu.Lock()
	s.prepared.add(text, p)
	s.cacheMu.Unlock()
	return p, nil
}

// prepareOrIdentity resolves optional query text (cont's views): empty
// text is the identity query with a reserved fingerprint.
func (s *Server) prepareOrIdentity(text string, rc *reqCtx) (query.Query, string, error) {
	if text == "" {
		return query.Identity{}, "~identity", nil
	}
	p, err := s.prepare(text, rc)
	if err != nil {
		return nil, "", err
	}
	return p.q, p.fp, nil
}

func cacheKey(kind, db string, version uint64, rest string) string {
	return kind + "\x00" + db + "\x00" + strconv.FormatUint(version, 10) + "\x00" + rest
}

// cachedEval is the answer-cache + singleflight core: a cache hit
// returns immediately; otherwise concurrent callers with the same key
// share one execution of fn, whose result is cached for the next
// request. With caching disabled the flight still coalesces identical
// in-flight work. Outcomes are recorded globally, per database, and in
// the request's cost counters; coalesced requests correctly lack eval
// spans — fn ran on the first caller's goroutine.
func (s *Server) cachedEval(db *database, key string, rc *reqCtx, fn func() (any, error)) (val any, cached, coalesced bool, err error) {
	s.cacheMu.Lock()
	if v, ok := s.answers.get(key); ok {
		s.cacheMu.Unlock()
		s.stats.AnswerHits.Add(1)
		s.metrics.ansHits.Inc()
		db.ansHits.Add(1)
		rc.cost.Add(obs.CacheHits, 1)
		return v, true, false, nil
	}
	s.cacheMu.Unlock()
	s.stats.AnswerMisses.Add(1)
	s.metrics.ansMisses.Inc()
	db.ansMisses.Add(1)
	rc.cost.Add(obs.CacheMisses, 1)
	val, err, coalesced = s.flight.do(key, func() (any, error) {
		v, err := fn()
		if err != nil {
			return nil, err
		}
		s.cacheMu.Lock()
		s.answers.add(key, v)
		s.cacheMu.Unlock()
		return v, nil
	})
	if coalesced {
		s.stats.Coalesced.Add(1)
		s.metrics.coalesced.Inc()
		rc.cost.Add(obs.CoalescedWaits, 1)
	}
	return val, false, coalesced, err
}

// evalEntry is one cached answer decomposition plus the answer
// instances read off it, derived at most once each, and the EXPLAIN
// plan recorded by the evaluation that populated the entry.
type evalEntry struct {
	out  *wsd.WSD
	plan *wsdalg.Plan

	possOnce sync.Once
	poss     *rel.Instance
	possErr  error

	certOnce sync.Once
	cert     *rel.Instance
	certErr  error
}

// possAnswers reads the possible answers off the cached decomposition.
func (e *evalEntry) possAnswers() (*rel.Instance, error) {
	e.possOnce.Do(func() {
		// Identity on the already-evaluated decomposition: reuse the
		// plan output, skip re-evaluation.
		e.poss, e.possErr = wsdalg.PossibleAnswers(e.out, query.Identity{})
	})
	return e.poss, e.possErr
}

func (e *evalEntry) certAnswers() (*rel.Instance, error) {
	e.certOnce.Do(func() {
		e.cert, e.certErr = wsdalg.CertainAnswers(e.out, query.Identity{})
	})
	return e.cert, e.certErr
}

// ansEntry caches a final answer instance (the c-table engine path,
// which has no reusable intermediate decomposition).
type ansEntry struct{ inst *rel.Instance }

func (s *Server) opAnswers(req *Request, v dbView, resp *Response, rc *reqCtx) (*Response, error) {
	// An empty query is the identity: the possible/certain facts of the
	// database's own world set.
	q, fp, err := s.prepareOrIdentity(req.Query, rc)
	if err != nil {
		return nil, err
	}
	rc.fp = fp
	var inst *rel.Instance
	if v.wsd != nil {
		// One cache line per (db-version, fingerprint) holds the
		// evaluated answer decomposition; poss-ans and cert-ans on the
		// same query share it.
		key := cacheKey("eval", v.name, v.version, fp)
		val, cached, coalesced, err := s.cachedEval(v.db, key, rc, func() (any, error) {
			defer s.acquire(rc)()
			sp := rc.span("eval")
			defer sp.End()
			// EvalOptimized over EvalObserved: planning plus the plan
			// cost microseconds next to the evaluation they describe,
			// and keeping the plan in the cache entry lets explain
			// requests on cache hits answer without re-evaluating.
			out, plan, err := wsdalg.EvalOptimized(v.wsd, q, rc.cost)
			if err != nil {
				sp.SetError(errorClass(err))
				rc.plan = plan // partial, error-marked: flight/slow log still see it
				return nil, err
			}
			return &evalEntry{out: out, plan: plan}, nil
		})
		if err != nil {
			return nil, err
		}
		entry := val.(*evalEntry)
		rc.plan = entry.plan
		sp := rc.span("answers")
		if req.Op == "poss-ans" {
			inst, err = entry.possAnswers()
		} else {
			inst, err = entry.certAnswers()
		}
		sp.End()
		if err != nil {
			return nil, err
		}
		resp.Cached, resp.Coalesced = cached, coalesced
	} else {
		key := cacheKey("tans:"+req.Op, v.name, v.version, fp)
		val, cached, coalesced, err := s.cachedEval(v.db, key, rc, func() (any, error) {
			defer s.acquire(rc)()
			sp := rc.span("decide")
			defer sp.End()
			var a *rel.Instance
			var err error
			if req.Op == "poss-ans" {
				a, err = s.opts(rc).PossibleAnswers(q, v.tab)
			} else {
				a, err = s.opts(rc).CertainAnswers(q, v.tab)
			}
			if err != nil {
				return nil, err
			}
			return &ansEntry{inst: a}, nil
		})
		if err != nil {
			return nil, err
		}
		inst = val.(*ansEntry).inst
		resp.Cached, resp.Coalesced = cached, coalesced
	}
	text, err := printInstance(inst)
	if err != nil {
		return nil, err
	}
	resp.Facts = text
	return resp, nil
}

func (s *Server) opCont(req *Request, v dbView, resp *Response, rc *reqCtx) (*Response, error) {
	if req.DB2 == "" {
		return nil, badRequest("missing db2")
	}
	v2, err := s.view(req.DB2)
	if err != nil {
		return nil, err
	}
	q0, fp0, err := s.prepareOrIdentity(req.Query, rc)
	if err != nil {
		return nil, err
	}
	q1, fp1, err := s.prepareOrIdentity(req.Query2, rc)
	if err != nil {
		return nil, err
	}
	rc.fp = fp0 + " ⊆ " + fp1
	rest := v2.name + "\x00" + strconv.FormatUint(v2.version, 10) + "\x00" + fp0 + "\x00" + fp1
	key := cacheKey("cont", v.name, v.version, rest)
	val, cached, coalesced, err := s.cachedEval(v.db, key, rc, func() (any, error) {
		defer s.acquire(rc)()
		sp := rc.span("decide")
		defer sp.End()
		return contDecide(q0, v, q1, v2, s.opts(rc))
	})
	if err != nil {
		return nil, err
	}
	resp.Cached, resp.Coalesced = cached, coalesced
	return yes(resp, val.(bool)), nil
}

// contDecide mirrors pwq's cont dispatch: both sides tables → the
// decision engine (every query class); otherwise the native wsdalg
// containment, compiling a table side to its exact decomposition first.
func contDecide(q0 query.Query, v dbView, q1 query.Query, v2 dbView, o decide.Options) (bool, error) {
	if v.wsd == nil && v2.wsd == nil {
		return o.Containment(q0, v.tab, q1, v2.tab)
	}
	w, w2 := v.wsd, v2.wsd
	if w == nil {
		var err error
		if w, err = wsd.ToWSD(v.tab); errors.Is(err, wsd.ErrInfiniteRep) && query.IsIdentity(q0) {
			// Infinitely many subset worlds cannot fit in a finite
			// decomposition's world set.
			return false, nil
		} else if err != nil {
			return false, err
		}
	}
	if w2 == nil {
		var err error
		if w2, err = wsd.ToWSD(v2.tab); err != nil {
			return false, fmt.Errorf("superset side: %w", err)
		}
	}
	return wsdalg.ContainmentViews(q0, w, q1, w2)
}
