package server_test

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pw/internal/server"
)

// postQuery POSTs one /query body through the full HTTP handler and
// decodes the Response.
func postQuery(t *testing.T, s *server.Server, target string, req *server.Request) (*server.Response, *httptest.ResponseRecorder) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest("POST", target, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, r)
	if rec.Code != 200 {
		t.Fatalf("POST %s: HTTP %d: %s", target, rec.Code, rec.Body.String())
	}
	var resp server.Response
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return &resp, rec
}

// spanNames flattens a span tree into the set of span names.
func spanNames(n any, into map[string]bool) {
	node, ok := n.(map[string]any)
	if !ok {
		return
	}
	if name, ok := node["name"].(string); ok {
		into[name] = true
	}
	if kids, ok := node["children"].([]any); ok {
		for _, k := range kids {
			spanNames(k, into)
		}
	}
}

// The acceptance path: a ?trace=1 cert-ans request on the resident
// sensors decomposition returns a span tree rooted at the op whose leaf
// counters expose the cache outcome and the engine work done.
func TestTracedCertAnsOnSensors(t *testing.T) {
	s := newTestServer(t, server.Config{Workers: 2})
	hi := mustRead(t, hiQueryPath)

	resp, rec := postQuery(t, s, "/query?trace=1", &server.Request{DB: "sensors", Op: "cert-ans", Query: hi})

	if resp.RequestID == "" {
		t.Fatal("traced response missing request_id")
	}
	if got := rec.Header().Get("X-Request-Id"); got != resp.RequestID {
		t.Errorf("X-Request-Id = %q, response request_id = %q", got, resp.RequestID)
	}
	if resp.Trace == nil {
		t.Fatal("traced response missing span tree")
	}
	if resp.Trace.Name != "cert-ans" {
		t.Errorf("trace root = %q, want cert-ans", resp.Trace.Name)
	}
	// Re-walk through JSON so the test pins the wire shape, not just the
	// Go struct.
	raw, _ := json.Marshal(resp.Trace)
	var tree any
	json.Unmarshal(raw, &tree)
	names := map[string]bool{}
	spanNames(tree, names)
	for _, want := range []string{"prepare", "eval", "answers"} {
		if !names[want] {
			t.Errorf("span tree missing %q span; have %v", want, names)
		}
	}
	// Leaf counters: a first-touch evaluation is one cache miss that
	// visits every component of the decomposition.
	if got := resp.Cost["cache_misses"]; got != 1 {
		t.Errorf("cost cache_misses = %d, want 1", got)
	}
	if got := resp.Cost["eval_components"]; got <= 0 {
		t.Errorf("cost eval_components = %d, want > 0", got)
	}
	if got := resp.Cost["parse_bytes"]; got <= 0 {
		t.Errorf("cost parse_bytes = %d, want > 0", got)
	}

	// The repeat is a pure cache hit: one hit, no miss, no eval span.
	repeat, _ := postQuery(t, s, "/query?trace=1", &server.Request{DB: "sensors", Op: "cert-ans", Query: hi})
	if !repeat.Cached {
		t.Fatal("repeat cert-ans missed the answer cache")
	}
	if got := repeat.Cost["cache_hits"]; got != 1 {
		t.Errorf("repeat cost cache_hits = %d, want 1", got)
	}
	if got := repeat.Cost["cache_misses"]; got != 0 {
		t.Errorf("repeat cost cache_misses = %d, want 0", got)
	}
	if repeat.RequestID == resp.RequestID {
		t.Error("request IDs must be unique per request")
	}
}

// Untraced requests must not carry trace fields — the hot path stays
// lean and the JSON shape unchanged.
func TestUntracedResponseHasNoTraceFields(t *testing.T) {
	s := newTestServer(t, server.Config{Workers: 2})
	_, rec := postQuery(t, s, "/query", &server.Request{DB: "sensors", Op: "count"})
	if rec.Header().Get("X-Request-Id") == "" {
		t.Error("every response should carry X-Request-Id")
	}
	var m map[string]any
	json.Unmarshal(rec.Body.Bytes(), &m)
	for _, field := range []string{"trace", "cost", "request_id"} {
		if _, ok := m[field]; ok {
			t.Errorf("untraced response leaked %q field", field)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, server.Config{Workers: 2})
	hi := mustRead(t, hiQueryPath)
	postQuery(t, s, "/query", &server.Request{DB: "sensors", Op: "cert-ans", Query: hi})
	postQuery(t, s, "/query?explain=1", &server.Request{DB: "sensors", Op: "cert-ans", Query: hi})

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics: HTTP %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want text exposition 0.0.4", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`pwd_requests_total{op="cert-ans"} 2`,
		`pwd_answer_cache_hits_total 1`,
		`pwd_answer_cache_misses_total 1`,
		`pwd_request_seconds_bucket{op="cert-ans",le="+Inf"} 2`,
		// Per-db families: versions and resident backend kinds.
		`pwd_db_version{db="personnel"} 1`,
		`pwd_db_version{db="sensors"} 1`,
		// Normalize's vertical-split rule rewrites the two-valued sensor
		// components into attribute templates, so sensors is attr-resident.
		`pwd_db_backend_info{db="sensors",backend="wsd",kind="attr"} 1`,
		`pwd_db_backend_info{db="personnel",backend="table",kind="table"} 1`,
		`pwd_db_answer_cache_hits_total{db="sensors"} 1`,
		`pwd_db_answer_cache_misses_total{db="sensors"} 1`,
		`pwd_db_answer_cache_entries{db="sensors"} 1`,
		// The introspection families: one of the two queries asked for a
		// plan, and both requests landed in the flight recorder.
		`pwd_explain_total 1`,
		`pwd_flight_records_total 2`,
		`pwd_flight_entries 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The HTTP-layer counter covers /query by status code; the two
	// queries above were both 200s. (This scrape itself is counted only
	// after the handler returns.)
	if !strings.Contains(body, `pwd_http_requests_total{path="/query",code="200"} 2`) {
		t.Errorf("/metrics missing /query http counter:\n%s", grepLines(body, "pwd_http_requests_total"))
	}
}

// grepLines returns the lines of s containing sub (test failure aid).
func grepLines(s, sub string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, sub) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

func TestStatsReportsPerDB(t *testing.T) {
	s := newTestServer(t, server.Config{Workers: 2})
	hi := mustRead(t, hiQueryPath)
	postQuery(t, s, "/query", &server.Request{DB: "sensors", Op: "cert-ans", Query: hi})
	postQuery(t, s, "/query", &server.Request{DB: "sensors", Op: "cert-ans", Query: hi})

	st := s.Stats()
	if len(st.DBs) != 2 {
		t.Fatalf("stats dbs = %d, want 2", len(st.DBs))
	}
	byName := map[string]server.DBStats{}
	for _, d := range st.DBs {
		byName[d.Name] = d
	}
	sensors := byName["sensors"]
	if sensors.Backend != "wsd" || sensors.Kind != "attr" {
		t.Errorf("sensors backend/kind = %s/%s, want wsd/attr", sensors.Backend, sensors.Kind)
	}
	if sensors.Version != 1 {
		t.Errorf("sensors version = %d, want 1", sensors.Version)
	}
	if sensors.AnswerHits != 1 || sensors.AnswerMisses != 1 || sensors.AnswerEntries != 1 {
		t.Errorf("sensors cache stats = %+v, want 1 hit, 1 miss, 1 entry", sensors)
	}
	personnel := byName["personnel"]
	if personnel.Backend != "table" || personnel.Kind != "table" {
		t.Errorf("personnel backend/kind = %s/%s, want table/table", personnel.Backend, personnel.Kind)
	}
}

func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	s := newTestServer(t, server.Config{
		Workers:            2,
		SlowQueryThreshold: time.Nanosecond, // everything is slow
		SlowQueryLog:       &buf,
	})
	hi := mustRead(t, hiQueryPath)
	_, rec := postQuery(t, s, "/query", &server.Request{DB: "sensors", Op: "cert-ans", Query: hi})

	// One JSON object per line, correlated to the HTTP response by
	// request_id == X-Request-Id.
	line := strings.TrimSpace(buf.String())
	var entry struct {
		Time      string           `json:"time"`
		RequestID string           `json:"request_id"`
		Op        string           `json:"op"`
		DB        string           `json:"db"`
		Fp        string           `json:"fp"`
		DurUS     int64            `json:"us"`
		Status    int              `json:"status"`
		Plan      string           `json:"plan"`
		Cost      map[string]int64 `json:"cost"`
	}
	if err := json.Unmarshal([]byte(line), &entry); err != nil {
		t.Fatalf("slow-query line is not one JSON object: %v\n%s", err, line)
	}
	if entry.Op != "cert-ans" || entry.DB != "sensors" || entry.Status != 200 {
		t.Errorf("slow-query line op/db/status = %q/%q/%d, want cert-ans/sensors/200", entry.Op, entry.DB, entry.Status)
	}
	if entry.Time == "" || entry.Fp == "" {
		t.Errorf("slow-query line missing time or fingerprint:\n%s", line)
	}
	if got := rec.Header().Get("X-Request-Id"); entry.RequestID != got {
		t.Errorf("slow-query request_id %q != X-Request-Id %q", entry.RequestID, got)
	}
	if entry.Cost["cache_misses"] != 1 {
		t.Errorf("slow-query cost missing cache_misses=1:\n%s", line)
	}
	if !strings.Contains(entry.Plan, "components=") {
		t.Errorf("slow-query plan summary missing components: %q", entry.Plan)
	}
}
