// Write-path tests: the "write" op end to end (apply, version bump,
// cache purge), the POST /update endpoint, the sample-seed default
// regression, and the update hammer — concurrent readers, writers, and
// reloaders where every read must observe exactly one of the states an
// atomic write history can produce (no torn reads).
package server_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"pw/internal/server"
)

const writeBase = "@wsd\n  relation: R(1)\n  component:\n    alt: R(a)\n    alt: R(b)\n"

func newWriteServer(t *testing.T) (*server.Server, string) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "db.pw")
	if err := os.WriteFile(path, []byte(writeBase), 0o644); err != nil {
		t.Fatal(err)
	}
	s := server.New(server.Config{Workers: 2})
	if err := s.Open("db", path); err != nil {
		t.Fatal(err)
	}
	return s, path
}

func TestWriteOpInstallsNewVersion(t *testing.T) {
	s, _ := newWriteServer(t)

	resp := do(t, s, &server.Request{DB: "db", Op: "write", Update: "@update\n  insert: R(c)\n"})
	if resp.Version != 2 || resp.Count != "2" {
		t.Fatalf("after insert: version %d count %s, want version 2 count 2", resp.Version, resp.Count)
	}
	cert := do(t, s, &server.Request{DB: "db", Op: "cert-ans"})
	if !strings.Contains(cert.Facts, "fact: c") {
		t.Fatalf("inserted fact not certain:\n%s", cert.Facts)
	}
	if cert.Version != 2 {
		t.Fatalf("read after write at version %d, want 2", cert.Version)
	}

	resp = do(t, s, &server.Request{DB: "db", Op: "write", Update: "@update\n  assume: R(a)\n"})
	if resp.Version != 3 || resp.Count != "1" {
		t.Fatalf("after assume: version %d count %s, want version 3 count 1", resp.Version, resp.Count)
	}
	cert = do(t, s, &server.Request{DB: "db", Op: "cert-ans"})
	if !strings.Contains(cert.Facts, "fact: a") || strings.Contains(cert.Facts, "fact: b") {
		t.Fatalf("assume did not pin the world:\n%s", cert.Facts)
	}
}

func TestWriteOpErrors(t *testing.T) {
	s, _ := newWriteServer(t)
	if err := s.Open("personnel", personnelPath); err != nil {
		t.Fatal(err)
	}
	body := func(req *server.Request) string {
		b, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	cases := []struct {
		name   string
		req    server.Request
		status int
	}{
		{"unknown db", server.Request{DB: "nope", Op: "write", Update: "@update\n  insert: R(a)\n"}, 404},
		{"missing update", server.Request{DB: "db", Op: "write"}, 400},
		{"parse error", server.Request{DB: "db", Op: "write", Update: "@update\n  upsert: R(a)\n"}, 400},
		{"table-backed", server.Request{DB: "personnel", Op: "write", Update: "@update\n  insert: Emp(x y)\n"}, 422},
		{"engine error", server.Request{DB: "db", Op: "write", Update: "@update\n  insert: Q(a)\n"}, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			httpJSON(t, s, "POST", "/query", body(&tc.req), tc.status, nil)
		})
	}
	// Failed writes must not bump the version.
	if v := do(t, s, &server.Request{DB: "db", Op: "count"}); v.Version != 1 {
		t.Fatalf("failed writes bumped version to %d", v.Version)
	}
}

// TestVersionBumpPurgesAnswerCache is the regression test for the cache
// leak: answers cached against a dead version used to squat in the LRU
// until capacity pressure evicted them (their keys could never be
// requested again). Both reload and write must purge them — and must
// leave other databases' entries alone.
func TestVersionBumpPurgesAnswerCache(t *testing.T) {
	s, path := newWriteServer(t)
	if err := s.Open("sensors", sensorsPath); err != nil {
		t.Fatal(err)
	}
	allQ := "@query all\n  out: All = R(x)\n"
	do(t, s, &server.Request{DB: "db", Op: "poss-ans"})
	do(t, s, &server.Request{DB: "db", Op: "poss-ans", Query: allQ})
	do(t, s, &server.Request{DB: "sensors", Op: "poss-ans"})
	if n := s.Stats().AnswerEntries; n != 3 {
		t.Fatalf("cache primed with %d entries, want 3", n)
	}

	if err := os.WriteFile(path, []byte("@wsd\n  relation: R(1)\n  component:\n    alt: R(z)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Reload("db"); err != nil {
		t.Fatal(err)
	}
	if n := s.Stats().AnswerEntries; n != 1 {
		t.Fatalf("after reload: %d entries, want 1 (db's dead-version entries purged, sensors' kept)", n)
	}

	do(t, s, &server.Request{DB: "db", Op: "poss-ans"})
	if n := s.Stats().AnswerEntries; n != 2 {
		t.Fatalf("after re-prime: %d entries, want 2", n)
	}
	do(t, s, &server.Request{DB: "db", Op: "write", Update: "@update\n  insert: R(w)\n"})
	if n := s.Stats().AnswerEntries; n != 1 {
		t.Fatalf("after write: %d entries, want 1 (write purges like reload)", n)
	}
}

// TestConcurrentReloadsNewestContentWins drives rounds of racing
// reloads under -race: after each round the file's final content must
// be the live backend, and versions must account for every install.
func TestConcurrentReloadsNewestContentWins(t *testing.T) {
	s, path := newWriteServer(t)
	const rounds, racers = 8, 3
	for round := 0; round < rounds; round++ {
		body := fmt.Sprintf("@wsd\n  relation: R(1)\n  component:\n    alt: R(r%02d)\n", round)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := 0; i < racers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := s.Reload("db"); err != nil {
					t.Errorf("round %d: %v", round, err)
				}
			}()
		}
		wg.Wait()
		resp := do(t, s, &server.Request{DB: "db", Op: "cert-ans"})
		if want := fmt.Sprintf("fact: r%02d", round); !strings.Contains(resp.Facts, want) {
			t.Fatalf("round %d: live content is stale:\n%s", round, resp.Facts)
		}
		if want := uint64(1 + (round+1)*racers); resp.Version != want {
			t.Fatalf("round %d: version %d, want %d (every reload installs)", round, resp.Version, want)
		}
	}
}

// TestSampleDefaultSeedDistinctFromOne pins the sample-seed contract:
// an omitted seed (JSON zero value) draws from the documented default
// stream, which is deterministic but distinct from the explicit seed=1
// stream. The old behavior coerced 0 to 1, so "no seed" silently
// aliased a client's explicit choice.
func TestSampleDefaultSeedDistinctFromOne(t *testing.T) {
	s := newTestServer(t, server.Config{Workers: 1})
	draw := func(seed int64) []string {
		t.Helper()
		return do(t, s, &server.Request{DB: "sensors", Op: "sample", N: 4, Seed: seed}).Worlds
	}
	def1, def2, one := draw(0), draw(0), draw(1)
	for i := range def1 {
		if def1[i] != def2[i] {
			t.Fatal("default seed is not deterministic")
		}
	}
	same := true
	for i := range def1 {
		if def1[i] != one[i] {
			same = false
		}
	}
	if same {
		t.Fatal("default-seed worlds identical to seed=1 worlds: the default aliases an explicit seed")
	}
}

func TestUpdateHTTPEndpoint(t *testing.T) {
	s, _ := newWriteServer(t)

	// The raw-text endpoint: the body is the @update program itself.
	var resp server.Response
	httpJSON(t, s, "POST", "/update?db=db", "@update\n  insert: R(c)\n", 200, &resp)
	if resp.Version != 2 || resp.Count != "2" {
		t.Fatalf("POST /update returned version %d count %s, want 2 / 2", resp.Version, resp.Count)
	}
	httpJSON(t, s, "POST", "/update", "@update\n  insert: R(d)\n", 400, nil)
	httpJSON(t, s, "POST", "/update?db=db", "not an update", 400, nil)

	// The JSON envelope reaches the same op.
	var resp2 server.Response
	httpJSON(t, s, "POST", "/query",
		`{"db":"db","op":"write","update":"@update\n  delete: R(c)\n"}`, 200, &resp2)
	if resp2.Version != 3 {
		t.Fatalf("write via /query returned version %d, want 3", resp2.Version)
	}
}

// TestUpdateHammer is the no-torn-reads proof: writers toggle a marker
// fact, a reloader resets to the base file, and readers continuously
// snapshot certain/possible answers. Every observed answer text must be
// exactly one of the states reachable by the atomic write history —
// never a blend of two versions.
func TestUpdateHammer(t *testing.T) {
	s, _ := newWriteServer(t)

	// Compute the canonical answer texts for both states sequentially.
	certBase := do(t, s, &server.Request{DB: "db", Op: "cert-ans"}).Facts
	possBase := do(t, s, &server.Request{DB: "db", Op: "poss-ans"}).Facts
	do(t, s, &server.Request{DB: "db", Op: "write", Update: "@update\n  insert: R(mark)\n"})
	certMark := do(t, s, &server.Request{DB: "db", Op: "cert-ans"}).Facts
	possMark := do(t, s, &server.Request{DB: "db", Op: "poss-ans"}).Facts
	if certBase == certMark || possBase == possMark {
		t.Fatal("marker states are not distinguishable; hammer would prove nothing")
	}
	do(t, s, &server.Request{DB: "db", Op: "write", Update: "@update\n  delete: R(mark)\n"})

	okCert := map[string]bool{certBase: true, certMark: true}
	okPoss := map[string]bool{possBase: true, possMark: true}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	report := func(format string, args ...any) {
		select {
		case errs <- fmt.Errorf(format, args...):
		default:
		}
	}
	for i := 0; i < 2; i++ { // writers: toggle the marker
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 40; k++ {
				op := "insert"
				if k%2 == 1 {
					op = "delete"
				}
				req := &server.Request{DB: "db", Op: "write",
					Update: fmt.Sprintf("@update\n  %s: R(mark)\n", op)}
				if _, err := s.Do(req); err != nil {
					report("writer %d: %v", i, err)
					return
				}
			}
		}(i)
	}
	wg.Add(1)
	go func() { // reloader: reset to the base file
		defer wg.Done()
		for k := 0; k < 15; k++ {
			if err := s.Reload("db"); err != nil {
				report("reloader: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 4; i++ { // readers: every answer must be a whole state
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 150; k++ {
				cert, err := s.Do(&server.Request{DB: "db", Op: "cert-ans"})
				if err != nil {
					report("reader %d cert: %v", i, err)
					return
				}
				if !okCert[cert.Facts] {
					report("reader %d: torn certain answers at version %d:\n%s", i, cert.Version, cert.Facts)
					return
				}
				poss, err := s.Do(&server.Request{DB: "db", Op: "poss-ans"})
				if err != nil {
					report("reader %d poss: %v", i, err)
					return
				}
				if !okPoss[poss.Facts] {
					report("reader %d: torn possible answers at version %d:\n%s", i, poss.Version, poss.Facts)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
