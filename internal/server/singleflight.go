package server

import (
	"fmt"
	"sync"
)

// flightGroup coalesces concurrent calls with the same key into one
// execution: the first caller runs fn, the rest block until it finishes
// and share its result. This is the request-batching layer — a burst of
// identical uncached queries costs one wsdalg.Eval, not one per client.
// (A deliberately minimal re-implementation of the x/sync singleflight
// idea; the repository vendors nothing.)
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// do runs fn once per key among concurrent callers. shared reports
// whether this caller piggybacked on another's execution.
func (g *flightGroup) do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	// fn may panic (or call runtime.Goexit, e.g. a test Fatalf inside a
	// handler). Without this cleanup the key would stay in-flight
	// forever and every later caller for it would block on a channel
	// nobody will close. Unwind: fail the waiters with an error, free
	// the key, and let the panic continue in the executing caller only.
	normal := false
	defer func() {
		var r any
		panicked := false
		if !normal {
			if r = recover(); r != nil {
				panicked = true
				c.err = fmt.Errorf("server: shared call panicked: %v", r)
			} else {
				// runtime.Goexit: unrecoverable, but the waiters still
				// need an answer and the key must not wedge.
				c.err = fmt.Errorf("server: shared call exited without returning")
			}
			c.val = nil
		}
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(c.done)
		if panicked {
			panic(r)
		}
	}()
	c.val, c.err = fn()
	normal = true
	return c.val, c.err, false
}
