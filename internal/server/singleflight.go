package server

import "sync"

// flightGroup coalesces concurrent calls with the same key into one
// execution: the first caller runs fn, the rest block until it finishes
// and share its result. This is the request-batching layer — a burst of
// identical uncached queries costs one wsdalg.Eval, not one per client.
// (A deliberately minimal re-implementation of the x/sync singleflight
// idea; the repository vendors nothing.)
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// do runs fn once per key among concurrent callers. shared reports
// whether this caller piggybacked on another's execution.
func (g *flightGroup) do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}
