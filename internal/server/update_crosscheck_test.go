// Differential validation of the write path through the shared
// metamorphic harness: seeded decompositions of both granularities,
// each with a seeded update program (inserts, deletes, conditional
// slot rewrites, world filters), answered post-update by the
// incremental renormalization engine, the full-renormalization
// reference, the factorization of the oracle's own post-update world
// list, and the server's write endpoint at two worker counts — every
// answer checked against the world-by-world application of the program
// to the explicit world list.
package server_test

import (
	"fmt"
	"math/rand"
	"testing"

	"pw/internal/difftest"
	"pw/internal/gen"
	"pw/internal/table"
	"pw/internal/wsd"
)

// randomUpdateProgram draws 1–3 operations over relation R and the
// generator's c0..c4 constant pool, covering all five operation kinds
// with wildcard patterns on delete/update.
func randomUpdateProgram(rng *rand.Rand, arity, consts int) *wsd.Update {
	n := 1 + rng.Intn(3)
	u := &wsd.Update{}
	for i := 0; i < n; i++ {
		kind := wsd.UpdateKind(rng.Intn(5))
		args := make([]string, arity)
		for j := range args {
			if (kind == wsd.OpDelete || kind == wsd.OpSet) && rng.Intn(3) == 0 {
				args[j] = wsd.Wildcard
				continue
			}
			args[j] = fmt.Sprintf("c%d", rng.Intn(consts))
		}
		op := wsd.UpdateOp{Kind: kind, Rel: "R", Args: args}
		if kind == wsd.OpSet {
			op.Set = []wsd.SlotAssign{{Slot: rng.Intn(arity), Value: fmt.Sprintf("c%d", rng.Intn(consts))}}
			if rng.Intn(2) == 0 && arity > 1 {
				slot := (op.Set[0].Slot + 1) % arity
				op.Set = append(op.Set, wsd.SlotAssign{Slot: slot, Value: fmt.Sprintf("c%d", rng.Intn(consts))})
			}
		}
		u.Ops = append(u.Ops, op)
	}
	return u
}

// templateWSD builds a template-heavy decomposition (the attribute-level
// half of the suite): mostly attr components over a small pool, plus an
// occasional optional tuple-level fact.
func templateWSD(seed int64) (*wsd.WSD, error) {
	w := wsd.New(table.Schema{{Name: "R", Arity: 2}})
	rng := rand.New(rand.NewSource(seed))
	comps := 3 + int(seed)%3
	for c := 0; c < comps; c++ {
		if rng.Intn(4) == 0 {
			alts := []wsd.Alt{
				{},
				{{Rel: "R", Args: []string{fmt.Sprintf("c%d", rng.Intn(5)), fmt.Sprintf("c%d", rng.Intn(5))}}},
			}
			if err := w.AddComponent(alts...); err != nil {
				return nil, err
			}
			continue
		}
		cells := make([][]string, 2)
		for i := range cells {
			vals := make([]string, 1+rng.Intn(3))
			for k := range vals {
				vals[k] = fmt.Sprintf("c%d", rng.Intn(5))
			}
			cells[i] = vals
		}
		if err := w.AddTemplateComponent("R", cells...); err != nil {
			return nil, err
		}
	}
	if err := w.Normalize(); err != nil {
		return nil, err
	}
	return w, nil
}

// TestDifferentialServerUpdates is the updates suite. Tuple-level and
// attribute-level bases alternate by seed; each case's update program
// must land every backend on the oracle's post-update world set.
func TestDifferentialServerUpdates(t *testing.T) {
	consts := make([]string, 5)
	for i := range consts {
		consts[i] = fmt.Sprintf("c%d", i)
	}
	difftest.Run(t, difftest.Config{
		Tag:   "server-updates",
		Cases: 150,
		Gen: func(seed int64) (*difftest.Case, bool) {
			var w *wsd.WSD
			var err error
			if seed%2 == 0 {
				w, err = gen.RandomWSD(seed, 3+int(seed)%2, 3, 2, 5)
			} else {
				w, err = templateWSD(seed)
			}
			if err != nil {
				return nil, false
			}
			if !w.Count().IsInt64() || w.Count().Int64() > 400 {
				return nil, false
			}
			u := randomUpdateProgram(rand.New(rand.NewSource(seed^0x0eed)), 2, 5)
			// Only emit cases the engine accepts (blow-up rejections have
			// their own unit tests); the skipped draws do not count.
			if _, err := w.ApplyUpdate(u); err != nil {
				return nil, false
			}
			return &difftest.Case{Worlds: w.Expand(0), WSD: w, Update: u, Consts: consts}, true
		},
		Backends: []difftest.Backend{
			difftest.UpdateBackend("wsd/update-incremental", false),
			difftest.UpdateBackend("wsd/update-full", true),
			difftest.FromWorldsBackend(),
			difftest.ServerUpdateBackend("server/update-w1", 1),
			difftest.ServerUpdateBackend("server/update-w8", 8),
		},
	})
}
