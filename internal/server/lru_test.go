package server

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c := newLRU(2)
	c.add("a", 1)
	c.add("b", 2)
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted below capacity")
	}
	// a was just touched, so inserting c must evict b.
	c.add("c", 3)
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived past capacity despite being least recently used")
	}
	if v, ok := c.get("a"); !ok || v.(int) != 1 {
		t.Fatalf("a = %v, %v; want 1, true", v, ok)
	}
	if v, ok := c.get("c"); !ok || v.(int) != 3 {
		t.Fatalf("c = %v, %v; want 3, true", v, ok)
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestLRUUpdateRefreshesEntry(t *testing.T) {
	c := newLRU(2)
	c.add("a", 1)
	c.add("b", 2)
	c.add("a", 10) // refresh, not insert: b stays
	c.add("c", 3)  // evicts b
	if v, ok := c.get("a"); !ok || v.(int) != 10 {
		t.Fatalf("a = %v, %v; want 10, true", v, ok)
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived; refresh of a should have left it least recently used")
	}
}

func TestLRUDisabled(t *testing.T) {
	for _, capacity := range []int{0, -1} {
		c := newLRU(capacity)
		c.add("a", 1)
		if _, ok := c.get("a"); ok {
			t.Fatalf("cap=%d: cache stored an entry while disabled", capacity)
		}
		if c.len() != 0 {
			t.Fatalf("cap=%d: len = %d, want 0", capacity, c.len())
		}
	}
}

func TestFlightGroupCoalesces(t *testing.T) {
	var g flightGroup
	var calls atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{})

	const followers = 7
	var wg sync.WaitGroup
	shared := make([]bool, followers+1)
	vals := make([]any, followers+1)

	// The leader blocks inside fn; followers that call do while it is
	// gated must join its flight instead of executing their own.
	wg.Add(1)
	go func() {
		defer wg.Done()
		vals[0], _, shared[0] = g.do("k", func() (any, error) {
			close(started)
			calls.Add(1)
			<-gate
			return 42, nil
		})
	}()
	<-started
	var arrived atomic.Int64
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arrived.Add(1)
			vals[i], _, shared[i] = g.do("k", func() (any, error) {
				calls.Add(1)
				return 42, nil
			})
		}(i)
	}
	// Release the leader only after every follower has reached its do
	// call (plus a couple of scheduler quanta for the final registration
	// step) so the followers join the gated flight instead of starting
	// their own after it completes.
	for arrived.Load() < followers {
		runtime.Gosched()
	}
	time.Sleep(5 * time.Millisecond)
	close(gate)
	wg.Wait()

	// All followers were parked on the flight; none may have run its own
	// fn. Tolerate a straggler (the arrival signal precedes registration
	// by a few instructions) but demand real coalescing.
	if got := calls.Load(); got > 2 {
		t.Fatalf("calls = %d, want coalescing (≤ 2) across %d followers", got, followers)
	}
	for i, v := range vals {
		if v.(int) != 42 {
			t.Fatalf("caller %d got %v, want 42", i, v)
		}
	}
	if shared[0] {
		t.Fatal("leader reported shared = true")
	}
}

func TestFlightGroupDistinctKeysDoNotCoalesce(t *testing.T) {
	var g flightGroup
	v1, _, _ := g.do("a", func() (any, error) { return 1, nil })
	v2, _, _ := g.do("b", func() (any, error) { return 2, nil })
	if v1.(int) != 1 || v2.(int) != 2 {
		t.Fatalf("got %v, %v; want 1, 2", v1, v2)
	}
}

func TestFlightGroupSequentialCallsRerun(t *testing.T) {
	var g flightGroup
	n := 0
	for i := 0; i < 3; i++ {
		v, _, shared := g.do("k", func() (any, error) { n++; return n, nil })
		if shared {
			t.Fatalf("call %d reported shared with no concurrency", i)
		}
		if v.(int) != i+1 {
			t.Fatalf("call %d = %v, want %d (completed flights must not be reused)", i, v, i+1)
		}
	}
}
