package server_test

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pw/internal/server"
)

const (
	sensorsPath   = "../../examples/data/sensors.pw"
	personnelPath = "../../examples/data/personnel.pw"
	worldPath     = "../../examples/data/sensors_world.pw"
	hiQueryPath   = "../../examples/data/sensors_hi.pw"
)

func mustRead(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func newTestServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	s := server.New(cfg)
	if err := s.Open("sensors", sensorsPath); err != nil {
		t.Fatal(err)
	}
	if err := s.Open("personnel", personnelPath); err != nil {
		t.Fatal(err)
	}
	return s
}

func do(t *testing.T, s *server.Server, req *server.Request) *server.Response {
	t.Helper()
	resp, err := s.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", req.DB, req.Op, err)
	}
	return resp
}

func wantYes(t *testing.T, resp *server.Response, want bool) {
	t.Helper()
	if resp.Answer == nil {
		t.Fatalf("%s %s: no answer in response", resp.DB, resp.Op)
	}
	if *resp.Answer != want {
		t.Fatalf("%s %s = %v, want %v", resp.DB, resp.Op, *resp.Answer, want)
	}
}

func TestFactProbesOnResidentWSD(t *testing.T) {
	s := newTestServer(t, server.Config{Workers: 2})
	world := mustRead(t, worldPath)

	wantYes(t, do(t, s, &server.Request{DB: "sensors", Op: "memb", Inst: world}), true)
	wantYes(t, do(t, s, &server.Request{DB: "sensors", Op: "uniq", Inst: world}), false)
	wantYes(t, do(t, s, &server.Request{DB: "sensors", Op: "poss",
		Facts: "@relation Reading(2)\n  fact: s00 hi\n"}), true)
	wantYes(t, do(t, s, &server.Request{DB: "sensors", Op: "cert",
		Facts: "@relation Reading(2)\n  fact: s00 hi\n"}), false)
	wantYes(t, do(t, s, &server.Request{DB: "sensors", Op: "cert",
		Facts: "@relation Reading(2)\n  fact: hub online\n"}), true)

	if resp := do(t, s, &server.Request{DB: "sensors", Op: "count"}); resp.Count != "1048576" {
		t.Fatalf("count = %s, want 1048576", resp.Count)
	}
	resp := do(t, s, &server.Request{DB: "sensors", Op: "sample", N: 3, Seed: 7})
	if len(resp.Worlds) != 3 {
		t.Fatalf("sample returned %d worlds, want 3", len(resp.Worlds))
	}
	for _, w := range resp.Worlds {
		wantYes(t, do(t, s, &server.Request{DB: "sensors", Op: "memb", Inst: w}), true)
	}
}

func TestAnswerCacheHitsAndSharing(t *testing.T) {
	s := newTestServer(t, server.Config{Workers: 2})
	hi := mustRead(t, hiQueryPath)

	first := do(t, s, &server.Request{DB: "sensors", Op: "cert-ans", Query: hi})
	if first.Cached {
		t.Fatal("first cert-ans reported cached")
	}
	repeat := do(t, s, &server.Request{DB: "sensors", Op: "cert-ans", Query: hi})
	if !repeat.Cached {
		t.Fatal("repeat cert-ans missed the answer cache")
	}
	if repeat.Facts != first.Facts {
		t.Fatalf("cached answer differs:\n%s\nvs\n%s", repeat.Facts, first.Facts)
	}
	// poss-ans on the same query reuses the evaluated decomposition.
	poss := do(t, s, &server.Request{DB: "sensors", Op: "poss-ans", Query: hi})
	if !poss.Cached {
		t.Fatal("poss-ans on the same query missed the shared eval entry")
	}
	if !strings.Contains(poss.Facts, "s00 hi") {
		t.Fatalf("poss-ans missing s00 hi:\n%s", poss.Facts)
	}
	// cert-ans of hi is empty (no sensor is certainly hi), but the
	// instance is schema-shaped.
	if !strings.Contains(first.Facts, "@relation Hi(2)") || strings.Contains(first.Facts, "fact:") {
		t.Fatalf("cert-ans should be the empty Hi relation:\n%s", first.Facts)
	}

	st := s.Stats()
	if st.AnswerHits < 2 || st.AnswerMisses < 1 {
		t.Fatalf("stats = %+v, want ≥2 hits and ≥1 miss", st)
	}
	if st.PreparedHits < 2 || st.PreparedMisses < 1 {
		t.Fatalf("stats = %+v, want prepared reuse", st)
	}
}

func TestPreparedQueriesShareFingerprint(t *testing.T) {
	s := newTestServer(t, server.Config{Workers: 2})
	// Two spellings of the same algebra: extra whitespace and a comment.
	a := "@query hi\n  out: Hi = select[#value = hi](Reading(sensor value))\n"
	b := "# same query, different text\n@query hi\n  out: Hi =   select[#value = hi](Reading(sensor value))\n"
	if r := do(t, s, &server.Request{DB: "sensors", Op: "cert-ans", Query: a}); r.Cached {
		t.Fatal("first spelling reported cached")
	}
	if r := do(t, s, &server.Request{DB: "sensors", Op: "cert-ans", Query: b}); !r.Cached {
		t.Fatal("second spelling missed the cache despite identical canonical form")
	}
}

func TestReloadInvalidatesCache(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.pw")
	writeFile := func(body string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("@wsd\n  relation: R(1)\n  component:\n    alt: R(a)\n    alt: R(b)\n")
	s := server.New(server.Config{Workers: 1})
	if err := s.Open("db", path); err != nil {
		t.Fatal(err)
	}
	q := "@query all\n  out: All = R(x)\n"
	first := do(t, s, &server.Request{DB: "db", Op: "poss-ans", Query: q})
	if first.Version != 1 || !strings.Contains(first.Facts, "fact: a") {
		t.Fatalf("version %d facts %q", first.Version, first.Facts)
	}
	if r := do(t, s, &server.Request{DB: "db", Op: "poss-ans", Query: q}); !r.Cached {
		t.Fatal("repeat missed cache before reload")
	}

	writeFile("@wsd\n  relation: R(1)\n  component:\n    alt: R(c)\n")
	if err := s.Reload("db"); err != nil {
		t.Fatal(err)
	}
	after := do(t, s, &server.Request{DB: "db", Op: "poss-ans", Query: q})
	if after.Cached {
		t.Fatal("request after reload served a stale cached answer")
	}
	if after.Version != 2 {
		t.Fatalf("version after reload = %d, want 2", after.Version)
	}
	if !strings.Contains(after.Facts, "fact: c") || strings.Contains(after.Facts, "fact: a") {
		t.Fatalf("answers not refreshed after reload:\n%s", after.Facts)
	}
}

func TestTableBackendOps(t *testing.T) {
	s := newTestServer(t, server.Config{Workers: 1})
	// Certain identity answers: the facts in every world. alice and bob
	// are unconditional rows with no nulls.
	r := do(t, s, &server.Request{DB: "personnel", Op: "cert-ans"})
	for _, want := range []string{"alice sales", "bob eng", "sales 1"} {
		if !strings.Contains(r.Facts, want) {
			t.Fatalf("cert-ans missing %q:\n%s", want, r.Facts)
		}
	}
	if strings.Contains(r.Facts, "carol") {
		t.Fatalf("carol's unknown department cannot be certain:\n%s", r.Facts)
	}
	if rr := do(t, s, &server.Request{DB: "personnel", Op: "cert-ans"}); !rr.Cached {
		t.Fatal("repeat table cert-ans missed the cache")
	}
	wantYes(t, do(t, s, &server.Request{DB: "personnel", Op: "poss",
		Facts: "@relation Emp(2)\n  fact: carol eng\n"}), true)
	wantYes(t, do(t, s, &server.Request{DB: "personnel", Op: "cert",
		Facts: "@relation Emp(2)\n  fact: carol eng\n"}), false)

	count := do(t, s, &server.Request{DB: "personnel", Op: "count"})
	if count.Count == "" || count.Count == "0" {
		t.Fatalf("count = %q, want positive canonical-domain count", count.Count)
	}
	if c2 := do(t, s, &server.Request{DB: "personnel", Op: "count"}); !c2.Cached || c2.Count != count.Count {
		t.Fatalf("repeat count: cached=%v count=%s, want cached repeat of %s", c2.Cached, c2.Count, count.Count)
	}

	sample := do(t, s, &server.Request{DB: "personnel", Op: "sample", Seed: 3})
	if len(sample.Worlds) != 1 {
		t.Fatalf("sample returned %d worlds", len(sample.Worlds))
	}
	wantYes(t, do(t, s, &server.Request{DB: "personnel", Op: "memb", Inst: sample.Worlds[0]}), true)
}

func TestContainmentAcrossBackends(t *testing.T) {
	s := newTestServer(t, server.Config{Workers: 1})
	// Every database contains itself.
	r := do(t, s, &server.Request{DB: "sensors", Op: "cont", DB2: "sensors"})
	wantYes(t, r, true)
	if rr := do(t, s, &server.Request{DB: "sensors", Op: "cont", DB2: "sensors"}); !rr.Cached {
		t.Fatal("repeat cont missed the cache")
	}
	// personnel's rep is infinite (unfrozen nulls); a finite sensors
	// world set cannot cover it, and the mixed-backend path answers "no"
	// without compiling the infinite side.
	wantYes(t, do(t, s, &server.Request{DB: "personnel", Op: "cont", DB2: "sensors"}), false)
}

func TestRequestErrors(t *testing.T) {
	s := newTestServer(t, server.Config{Workers: 1})
	cases := []struct {
		name string
		req  server.Request
	}{
		{"unknown db", server.Request{DB: "nope", Op: "count"}},
		{"missing db", server.Request{Op: "count"}},
		{"missing op", server.Request{DB: "sensors"}},
		{"unknown op", server.Request{DB: "sensors", Op: "frobnicate"}},
		{"memb without inst", server.Request{DB: "sensors", Op: "memb"}},
		{"poss without facts", server.Request{DB: "sensors", Op: "poss"}},
		{"cont without db2", server.Request{DB: "sensors", Op: "cont"}},
		{"malformed query", server.Request{DB: "sensors", Op: "cert-ans", Query: "@query\n  out: Bad = nonsense((("}},
		{"malformed inst", server.Request{DB: "sensors", Op: "memb", Inst: "not a .pw instance"}},
		{"oversized sample", server.Request{DB: "sensors", Op: "sample", N: 100000}},
	}
	for _, c := range cases {
		if _, err := s.Do(&c.req); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
	if s.Stats().Errors != int64(len(cases)) {
		t.Fatalf("error counter = %d, want %d", s.Stats().Errors, len(cases))
	}
}

func TestDuplicateAndReloadErrors(t *testing.T) {
	s := newTestServer(t, server.Config{})
	if err := s.Open("sensors", sensorsPath); err == nil {
		t.Fatal("duplicate Open succeeded")
	}
	if err := s.Open("query", hiQueryPath); err == nil {
		t.Fatal("opening a @query file as a database succeeded")
	}
	if err := s.Reload("nope"); err == nil {
		t.Fatal("reloading an unknown database succeeded")
	}
}

func httpJSON(t *testing.T, s *server.Server, method, target, body string, wantStatus int, out any) {
	t.Helper()
	var r *httptest.ResponseRecorder
	req := httptest.NewRequest(method, target, strings.NewReader(body))
	r = httptest.NewRecorder()
	s.Handler().ServeHTTP(r, req)
	if r.Code != wantStatus {
		t.Fatalf("%s %s: HTTP %d, want %d: %s", method, target, r.Code, wantStatus, r.Body.String())
	}
	if out != nil {
		if err := json.Unmarshal(r.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, target, err)
		}
	}
}

func TestHTTPEndpoints(t *testing.T) {
	s := newTestServer(t, server.Config{Workers: 2})

	var resp server.Response
	httpJSON(t, s, "POST", "/query",
		`{"db":"sensors","op":"poss","facts":"@relation Reading(2)\n  fact: s03 hi\n"}`,
		200, &resp)
	if resp.Answer == nil || !*resp.Answer {
		t.Fatalf("poss over HTTP = %+v, want yes", resp)
	}

	var dbs []server.DBInfo
	httpJSON(t, s, "GET", "/dbs", "", 200, &dbs)
	if len(dbs) != 2 || dbs[0].Name != "personnel" || dbs[1].Name != "sensors" {
		t.Fatalf("/dbs = %+v", dbs)
	}
	if dbs[1].Backend != "wsd" || dbs[1].Count != "1048576" {
		t.Fatalf("sensors info = %+v", dbs[1])
	}
	if dbs[0].Backend != "table" {
		t.Fatalf("personnel info = %+v", dbs[0])
	}

	var st server.Stats
	httpJSON(t, s, "GET", "/stats", "", 200, &st)
	if st.Requests == 0 {
		t.Fatalf("stats = %+v, want requests counted", st)
	}

	// Error classification: bad request body, unknown database, and a
	// query whose choiceof axis entangles every sensor component past
	// the merge bound (≠ selections are evaluable natively these days,
	// so entanglement is the canonical 422).
	httpJSON(t, s, "POST", "/query", `{"nope":1}`, 400, nil)
	httpJSON(t, s, "POST", "/query", `{"db":"ghost","op":"count"}`, 404, nil)
	httpJSON(t, s, "POST", "/query",
		`{"db":"sensors","op":"cert-ans","query":"@query q\n  out: Q = choiceof(Reading(s v))\n"}`,
		422, nil)
	httpJSON(t, s, "POST", "/reload", "", 400, nil)
	httpJSON(t, s, "POST", "/reload?db=ghost", "", 404, nil)

	r := httptest.NewRecorder()
	s.Handler().ServeHTTP(r, httptest.NewRequest("GET", "/healthz", nil))
	if r.Code != 200 || !strings.Contains(r.Body.String(), "ok") {
		t.Fatalf("/healthz = %d %q", r.Code, r.Body.String())
	}
	r = httptest.NewRecorder()
	s.Handler().ServeHTTP(r, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if r.Code != 200 {
		t.Fatalf("/debug/pprof/ = %d", r.Code)
	}
	r = httptest.NewRecorder()
	s.Handler().ServeHTTP(r, httptest.NewRequest("GET", "/debug/vars", nil))
	if r.Code != 200 {
		t.Fatalf("/debug/vars = %d", r.Code)
	}
}

func TestCacheDisabled(t *testing.T) {
	s := server.New(server.Config{Workers: 1, CacheSize: -1})
	if err := s.Open("sensors", sensorsPath); err != nil {
		t.Fatal(err)
	}
	hi := mustRead(t, hiQueryPath)
	for i := 0; i < 2; i++ {
		if r := do(t, s, &server.Request{DB: "sensors", Op: "cert-ans", Query: hi}); r.Cached {
			t.Fatalf("request %d reported cached with caching disabled", i)
		}
	}
	st := s.Stats()
	if st.AnswerHits != 0 || st.AnswerEntries != 0 {
		t.Fatalf("stats = %+v, want no hits and no entries", st)
	}
}
