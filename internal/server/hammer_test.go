// The concurrency hammer: many goroutines fire mixed cached and
// uncached queries across two resident databases (one decomposition,
// one conditioned-table) while another goroutine reloads one of them,
// and every single answer is compared against fresh single-threaded
// engine output computed up front. Run under -race in CI, this is the
// test that the lock discipline, the caches, and the singleflight group
// never leak one request's state into another's answer.
package server_test

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"

	"pw/internal/decide"
	"pw/internal/parse"
	"pw/internal/query"
	"pw/internal/server"
	"pw/internal/wsdalg"
)

// hammerShot is one precomputed request/expected-answer pair.
type hammerShot struct {
	name string
	req  server.Request
	// exactly one of want*, per the op's response field
	wantYes   *bool
	wantCount string
	wantFacts string // canonical text via parse round-trip
}

// canonInstance reduces instance text to a canonical form for equality.
// It must stay t-free: the hammer calls it from worker goroutines.
func canonInstance(text string) (string, error) {
	inst, err := parse.ParseInstance(strings.NewReader(text))
	if err != nil {
		return "", fmt.Errorf("parse answer instance: %v\n%s", err, text)
	}
	var b strings.Builder
	if err := parse.PrintInstance(&b, inst); err != nil {
		return "", err
	}
	return b.String(), nil
}

// buildShots derives the oracle with freshly parsed databases and the
// sequential engines (Workers: 1) — the single-threaded pwq answers the
// server under load must reproduce.
func buildShots(t *testing.T) []hammerShot {
	t.Helper()
	b := func(v bool) *bool { return &v }
	seq := decide.Options{Workers: 1}

	load := func(path string) *parse.Source {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		src, err := parse.ParseSource(f)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	sensors := load(sensorsPath).WSD
	personnel := load(personnelPath).DB
	world := mustRead(t, worldPath)

	var shots []hammerShot

	// Decomposition fact probes: resident-WSD fast path, no cache.
	shots = append(shots,
		hammerShot{name: "sensors memb world",
			req:     server.Request{DB: "sensors", Op: "memb", Inst: world},
			wantYes: b(true)},
		hammerShot{name: "sensors poss s00 hi",
			req:     server.Request{DB: "sensors", Op: "poss", Facts: "@relation Reading(2)\n  fact: s00 hi\n"},
			wantYes: b(true)},
		hammerShot{name: "sensors cert hub",
			req:     server.Request{DB: "sensors", Op: "cert", Facts: "@relation Reading(2)\n  fact: hub online\n"},
			wantYes: b(true)},
		hammerShot{name: "sensors cert s00 hi",
			req:     server.Request{DB: "sensors", Op: "cert", Facts: "@relation Reading(2)\n  fact: s00 hi\n"},
			wantYes: b(false)},
		hammerShot{name: "sensors count",
			req:       server.Request{DB: "sensors", Op: "count"},
			wantCount: sensors.Count().String()},
	)

	// Decomposition query answers: a family of distinct selections so
	// the answer cache sees both hits and misses under load.
	for _, sel := range []string{"hi", "lo", "online"} {
		q := fmt.Sprintf("@query q\n  out: Q = select[#value = %s](Reading(sensor value))\n", sel)
		src, err := parse.ParseSource(strings.NewReader(q))
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range []string{"poss-ans", "cert-ans"} {
			var want string
			if op == "poss-ans" {
				inst, err := wsdalg.PossibleAnswers(sensors, *src.Query)
				if err != nil {
					t.Fatal(err)
				}
				var sb strings.Builder
				if err := parse.PrintInstance(&sb, inst); err != nil {
					t.Fatal(err)
				}
				want = sb.String()
			} else {
				inst, err := wsdalg.CertainAnswers(sensors, *src.Query)
				if err != nil {
					t.Fatal(err)
				}
				var sb strings.Builder
				if err := parse.PrintInstance(&sb, inst); err != nil {
					t.Fatal(err)
				}
				want = sb.String()
			}
			shots = append(shots, hammerShot{
				name:      fmt.Sprintf("sensors %s %s", op, sel),
				req:       server.Request{DB: "sensors", Op: op, Query: q},
				wantFacts: want,
			})
		}
	}

	// Table-backend probes through the decision engine and its caches.
	certAns, err := seq.CertainAnswers(query.Identity{}, personnel)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := parse.PrintInstance(&sb, certAns); err != nil {
		t.Fatal(err)
	}
	shots = append(shots, hammerShot{name: "personnel cert-ans identity",
		req:       server.Request{DB: "personnel", Op: "cert-ans"},
		wantFacts: sb.String()})
	shots = append(shots,
		hammerShot{name: "personnel poss carol eng",
			req:     server.Request{DB: "personnel", Op: "poss", Facts: "@relation Emp(2)\n  fact: carol eng\n"},
			wantYes: b(true)},
		hammerShot{name: "personnel cert alice",
			req:     server.Request{DB: "personnel", Op: "cert", Facts: "@relation Emp(2)\n  fact: alice sales\n"},
			wantYes: b(true)},
		hammerShot{name: "cont sensors sensors",
			req:     server.Request{DB: "sensors", Op: "cont", DB2: "sensors"},
			wantYes: b(true)},
	)
	return shots
}

func TestConcurrentMixedLoadMatchesSequentialAnswers(t *testing.T) {
	shots := buildShots(t)
	s := newTestServer(t, server.Config{Workers: 8, CacheSize: 64})

	const (
		goroutines = 8
		rounds     = 30
	)
	var wg sync.WaitGroup
	errc := make(chan error, goroutines+1)

	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Stagger the shot order per goroutine so cache hits,
				// misses, and coalesced flights interleave.
				shot := shots[(r*goroutines+g*7+r)%len(shots)]
				resp, err := s.Do(&shot.req)
				if err != nil {
					errc <- fmt.Errorf("%s: %v", shot.name, err)
					return
				}
				switch {
				case shot.wantYes != nil:
					if resp.Answer == nil || *resp.Answer != *shot.wantYes {
						errc <- fmt.Errorf("%s: answer = %v, want %v", shot.name, resp.Answer, *shot.wantYes)
						return
					}
				case shot.wantCount != "":
					if resp.Count != shot.wantCount {
						errc <- fmt.Errorf("%s: count = %s, want %s", shot.name, resp.Count, shot.wantCount)
						return
					}
				default:
					got, err := canonInstance(resp.Facts)
					if err != nil {
						errc <- fmt.Errorf("%s: %v", shot.name, err)
						return
					}
					if got != shot.wantFacts {
						errc <- fmt.Errorf("%s: answers diverged under load:\n%s\nwant\n%s",
							shot.name, resp.Facts, shot.wantFacts)
						return
					}
				}
			}
		}(g)
	}

	// Concurrent reloads of the decomposition database: the file is
	// unchanged, so answers stay fixed while versions advance and every
	// cached entry for the old version goes stale mid-flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := s.Reload("sensors"); err != nil {
				errc <- fmt.Errorf("reload: %v", err)
				return
			}
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	st := s.Stats()
	if st.AnswerHits == 0 {
		t.Fatalf("stats = %+v: the hammer never hit the answer cache", st)
	}
	if st.Errors != 0 {
		t.Fatalf("stats = %+v: requests errored under load", st)
	}
	v, err := s.Do(&server.Request{DB: "sensors", Op: "count"})
	if err != nil {
		t.Fatal(err)
	}
	if v.Version != 6 {
		t.Fatalf("sensors version = %d after 5 reloads, want 6", v.Version)
	}
}
