// Quickstart: build a c-table, enumerate its possible worlds, and ask the
// five decision questions of the paper.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pw"
)

func main() {
	// A c-table describing what we know about a small lab assignment
	// sheet: the room of "ada" is unknown (?r), "bob" is in room 101
	// only if ada is NOT in 101 (they refuse to share), and "eve" shows
	// up only if ada took room 102.
	t := pw.NewTable("Assign", 2)
	t.AddTuple(pw.Const("ada"), pw.Var("r"))
	t.Add(pw.Row{
		Values: pw.Tuple{pw.Const("bob"), pw.Const("101")},
		Cond:   pw.Conjunction{pw.Neq(pw.Var("r"), pw.Const("101"))},
	})
	t.Add(pw.Row{
		Values: pw.Tuple{pw.Const("eve"), pw.Const("103")},
		Cond:   pw.Conjunction{pw.Eq(pw.Var("r"), pw.Const("102"))},
	})
	db := pw.NewDatabase(t)
	fmt.Println("the c-table:")
	fmt.Println(t)
	fmt.Printf("\nrepresentation kind: %v\n", db.Kind())

	// Enumerate the possible worlds over the canonical domain.
	fmt.Println("\npossible worlds (canonical domain):")
	for i, w := range pw.Worlds(db) {
		fmt.Printf("  world %d: %v\n", i+1, w.Relation("Assign").Facts())
	}

	// Possibility and certainty of single facts.
	for _, q := range []struct {
		fact pw.Fact
		desc string
	}{
		{pw.Fact{"bob", "101"}, "bob in 101"},
		{pw.Fact{"ada", "102"}, "ada in 102"},
		{pw.Fact{"eve", "103"}, "eve in 103"},
	} {
		poss, err := pw.PossibleFact("Assign", q.fact, pw.Identity(), db)
		if err != nil {
			log.Fatal(err)
		}
		cert, err := pw.CertainFact("Assign", q.fact, pw.Identity(), db)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s possible=%-5v certain=%v\n", q.desc+":", poss, cert)
	}

	// Membership: is this exact sheet one of the possible worlds?
	inst := pw.NewInstance()
	a := pw.NewRelation("Assign", 2)
	a.Add(pw.Fact{"ada", "102"})
	a.Add(pw.Fact{"bob", "101"})
	a.Add(pw.Fact{"eve", "103"})
	inst.AddRelation(a)
	member, err := pw.Member(inst, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n{ada→102, bob→101, eve→103} is a possible world: %v\n", member)
}
