// Personnel: an incomplete HR database in the spirit of the motivating
// examples of the incomplete-information literature. Department
// assignments contain nulls constrained by conditions; queries ask for
// certain and possible answers through a positive existential view —
// exercising the lifted c-table algebra of Theorem 5.2(1) and the frozen
// certainty evaluation of Theorem 5.3(1).
//
//	go run ./examples/personnel
package main

import (
	"fmt"
	"log"

	"pw"
	"pw/internal/algebra"
	"pw/internal/query"
)

func main() {
	// Emp(name, dept): two assignments are unknown; the union agreement
	// says dana and carol must not be in the same department.
	emp := pw.NewTable("Emp", 2)
	emp.AddTuple(pw.Const("alice"), pw.Const("sales"))
	emp.AddTuple(pw.Const("bob"), pw.Const("eng"))
	emp.AddTuple(pw.Const("carol"), pw.Var("dc"))
	emp.AddTuple(pw.Const("dana"), pw.Var("dd"))
	emp.Global = pw.Conjunction{pw.Neq(pw.Var("dc"), pw.Var("dd"))}

	// Dept(dept, floor): the floor of the eng department is unknown.
	dept := pw.NewTable("Dept", 2)
	dept.AddTuple(pw.Const("sales"), pw.Const("1"))
	dept.AddTuple(pw.Const("eng"), pw.Var("f"))
	db := pw.NewDatabase(emp, dept)
	fmt.Printf("database kind: %v\n%s\n\n%s\n", db.Kind(), emp, dept)

	// The view: Located(name, floor) = π[name,floor](Emp ⋈ Dept).
	located := query.NewAlgebra("located", query.Out{
		Name: "Located",
		Expr: algebra.Project{
			E:    algebra.Join{L: algebra.Scan("Emp", "name", "dept"), R: algebra.Scan("Dept", "dept", "floor")},
			Cols: []string{"name", "floor"},
		},
	})

	// Apply the view to the c-table directly (Imielinski–Lipski): the
	// result is again a c-table describing all possible view states.
	lifted, err := pw.Apply(located, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("the view as a c-table (rep(view) = view(rep)):")
	fmt.Println(lifted)

	// Certain and possible answers.
	ask := func(name, floor string) {
		f := pw.Fact{name, floor}
		cert, err := pw.CertainFact("Located", f, located, db)
		if err != nil {
			log.Fatal(err)
		}
		poss, err := pw.PossibleFact("Located", f, located, db)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Located(%s,%s): certain=%-5v possible=%v\n", name, floor, cert, poss)
	}
	ask("alice", "1") // certain: alice→sales→floor 1
	ask("bob", "2")   // possible but not certain: eng's floor is unknown
	ask("carol", "1") // possible: carol may be in sales
	ask("alice", "9") // impossible

	// A bounded-possibility question (POSS(2, q), Theorem 5.2(1)): can
	// carol and dana BOTH be located on floor 1? Only if both are in
	// sales — but the union agreement forbids sharing, so no.
	p := pw.NewInstance()
	r := pw.NewRelation("Located", 2)
	r.Add(pw.Fact{"carol", "1"})
	r.Add(pw.Fact{"dana", "1"})
	p.AddRelation(r)
	both, err := pw.Possible(p, located, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncarol AND dana both on floor 1 possible: %v (dc ≠ dd forbids it unless eng is also on floor 1)\n", both)
}
