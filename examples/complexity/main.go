// Complexity: a miniature live rendition of Fig. 2 — the same decision
// problem gets polynomially easier or exponentially harder depending only
// on the representation. The example runs MEMB on each table kind at
// growing sizes and prints the timings side by side.
//
//	go run ./examples/complexity
package main

import (
	"fmt"
	"time"

	"pw"
	"pw/internal/decide"
	"pw/internal/gen"
	"pw/internal/graph"
	"pw/internal/query"
	"pw/internal/reduce"
)

func main() {
	fmt.Println("MEMB(-) on Codd-tables: polynomial (Theorem 3.1(1))")
	fmt.Println("rows   time")
	for _, n := range []int{128, 256, 512, 1024} {
		tb := gen.CoddTable(int64(n), "T", n, 3, 2*n, 0.3)
		d := pw.NewDatabase(tb)
		inst, ok := gen.MemberInstance(int64(n), d)
		if !ok {
			continue
		}
		start := time.Now()
		if _, err := pw.Member(inst, d); err != nil {
			panic(err)
		}
		fmt.Printf("%-6d %v\n", n, time.Since(start).Round(time.Microsecond))
	}

	fmt.Println("\nMEMB(-) on e-tables from 3-colorability: NP-complete (Theorem 3.1(2))")
	fmt.Println("the instance encodes K4 plus a growing 3-colorable tail;")
	fmt.Println("each extra vertex multiplies the search space")
	fmt.Println("vertices  answer  time")
	for _, n := range []int{4, 6, 8, 10} {
		g := graph.Complete(4)
		// Grow a path glued to vertex 0: keeps non-3-colorability, adds
		// variables.
		grown := graph.New(n)
		for _, e := range g.Edges {
			grown.MustEdge(e.A, e.B)
		}
		for v := 4; v < n; v++ {
			grown.MustEdge(v-1, v)
		}
		inst := reduce.MembETableFrom3Col(grown)
		start := time.Now()
		yes, err := decide.Membership(inst.I0, query.Identity{}, inst.D)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-9d %-7v %v\n", n, yes, time.Since(start).Round(time.Microsecond))
	}

	fmt.Println("\nsame data, represented as an i-table (Theorem 3.1(3)): also NP-complete,")
	fmt.Println("but the very same worlds as a plain Codd-table are polynomial —")
	fmt.Println("the cost lives in the representation, not the data. That is Fig. 2.")
}
