// Network: link-state uncertainty and containment. Two monitoring systems
// report partial views of a network's link table; the question "does
// monitor A's knowledge refine monitor B's?" is exactly the containment
// problem CONT(−,−) (§4 of the paper), and reachability under uncertainty
// is DATALOG certainty (Theorem 5.3(1)).
//
//	go run ./examples/network
package main

import (
	"fmt"
	"log"

	"pw"
	"pw/internal/datalog"
	"pw/internal/query"
	"pw/internal/value"
)

func main() {
	// Monitor A: knows s→a and a→t, plus one link from a to an unknown
	// node.
	linkA := pw.NewTable("Link", 2)
	linkA.AddTuple(pw.Const("s"), pw.Const("a"))
	linkA.AddTuple(pw.Const("a"), pw.Const("t"))
	linkA.AddTuple(pw.Const("a"), pw.Var("x"))

	// Monitor B: the same, but B is even less sure: both endpoints of the
	// third link are open.
	linkB := pw.NewTable("Link", 2)
	linkB.AddTuple(pw.Const("s"), pw.Const("a"))
	linkB.AddTuple(pw.Const("a"), pw.Const("t"))
	linkB.AddTuple(pw.Var("y"), pw.Var("z"))

	dbA, dbB := pw.NewDatabase(linkA), pw.NewDatabase(linkB)

	// A's worlds are a subset of B's (A commits the link source to "a").
	sub, err := pw.Contained(dbA, dbB)
	if err != nil {
		log.Fatal(err)
	}
	sup, err := pw.Contained(dbB, dbA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rep(A) ⊆ rep(B): %v (A refines B)\n", sub)
	fmt.Printf("rep(B) ⊆ rep(A): %v (B admits worlds A excludes)\n", sup)

	// Reachability: is t certainly reachable from s whatever the unknown
	// link turns out to be? DATALOG transitive closure + frozen
	// evaluation (Theorem 5.3(1)).
	prog := datalog.Program{Rules: []datalog.Rule{
		datalog.R(datalog.At("Reach", value.Var("u"), value.Var("v")),
			datalog.At("Link", value.Var("u"), value.Var("v"))),
		datalog.R(datalog.At("Reach", value.Var("u"), value.Var("w")),
			datalog.At("Reach", value.Var("u"), value.Var("v")),
			datalog.At("Link", value.Var("v"), value.Var("w"))),
	}}
	reach := query.NewDatalog("reach", prog, "Reach")

	for _, tc := range []struct {
		from, to string
	}{
		{"s", "t"}, // certain: the s→a→t path needs no unknown link
		{"s", "b"}, // possible (x may be b) but not certain
	} {
		f := pw.Fact{tc.from, tc.to}
		cert, err := pw.CertainFact("Reach", f, reach, dbA)
		if err != nil {
			log.Fatal(err)
		}
		poss, err := pw.PossibleFact("Reach", f, reach, dbA)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Reach(%s,%s): certain=%-5v possible=%v\n", tc.from, tc.to, cert, poss)
	}

	// Membership: could the network actually be exactly this?
	world := pw.NewInstance()
	r := pw.NewRelation("Link", 2)
	r.Add(pw.Fact{"s", "a"})
	r.Add(pw.Fact{"a", "t"})
	world.AddRelation(r)
	member, err := pw.Member(world, dbA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexactly {s→a, a→t} is a possible world of A: %v (the unknown link may coincide with a→t)\n", member)
}
