package pw_test

import (
	"fmt"
	"sort"

	"pw"
	"pw/internal/algebra"
	"pw/internal/query"
)

// ExampleWorlds builds the simplest incomplete table — one null — and
// enumerates its possible worlds over the canonical domain.
func ExampleWorlds() {
	t := pw.NewTable("R", 1)
	t.AddTuple(pw.Const("1"))
	t.AddTuple(pw.Var("x"))
	db := pw.NewDatabase(t)

	var lines []string
	for _, w := range pw.Worlds(db) {
		lines = append(lines, fmt.Sprint(w.Relation("R").Facts()))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
	// Output:
	// [(1) (~z0)]
	// [(1)]
}

// ExampleMember asks whether a complete database is one of the worlds a
// g-table represents (the MEMB problem, Theorem 3.1).
func ExampleMember() {
	t := pw.NewTable("R", 2)
	t.AddTuple(pw.Const("a"), pw.Var("x"))
	t.Global = pw.Conjunction{pw.Neq(pw.Var("x"), pw.Const("banned"))}
	db := pw.NewDatabase(t)

	good := pw.NewInstance()
	r := pw.NewRelation("R", 2)
	r.Add(pw.Fact{"a", "ok"})
	good.AddRelation(r)

	bad := pw.NewInstance()
	rb := pw.NewRelation("R", 2)
	rb.Add(pw.Fact{"a", "banned"})
	bad.AddRelation(rb)

	in1, _ := pw.Member(good, db)
	in2, _ := pw.Member(bad, db)
	fmt.Println(in1, in2)
	// Output: true false
}

// ExampleCertainFact shows possibility vs certainty on a c-table with a
// conditioned row.
func ExampleCertainFact() {
	t := pw.NewTable("On", 1)
	t.AddTuple(pw.Const("base"))
	t.Add(pw.Row{
		Values: pw.Tuple{pw.Const("backup")},
		Cond:   pw.Conjunction{pw.Eq(pw.Var("mode"), pw.Const("failover"))},
	})
	db := pw.NewDatabase(t)

	certBase, _ := pw.CertainFact("On", pw.Fact{"base"}, pw.Identity(), db)
	certBackup, _ := pw.CertainFact("On", pw.Fact{"backup"}, pw.Identity(), db)
	possBackup, _ := pw.PossibleFact("On", pw.Fact{"backup"}, pw.Identity(), db)
	fmt.Println(certBase, certBackup, possBackup)
	// Output: true false true
}

// ExampleApply evaluates a positive existential query directly on a
// c-table: the result is again a c-table representing the view's worlds
// (the Imielinski–Lipski representation-system property).
func ExampleApply() {
	t := pw.NewTable("R", 2)
	t.AddTuple(pw.Const("1"), pw.Var("x"))
	db := pw.NewDatabase(t)

	q := query.NewAlgebra("diag", query.Out{
		Name: "Q",
		Expr: algebra.Project{
			E:    algebra.Where(algebra.Scan("R", "a", "b"), algebra.EqP(algebra.Col("a"), algebra.Col("b"))),
			Cols: []string{"a"},
		},
	})
	lifted, _ := pw.Apply(q, db)
	fmt.Println(lifted.Table("Q"))
	// Output:
	// @table Q(1)
	//   row: 1 | 1 = ?x
}

// ExampleContained compares the information content of two incomplete
// databases (the CONT problem, §4 of the paper).
func ExampleContained() {
	precise := pw.NewTable("R", 1)
	precise.AddTuple(pw.Const("7"))
	vague := pw.NewTable("R", 1)
	vague.AddTuple(pw.Var("x"))

	sub, _ := pw.Contained(pw.NewDatabase(precise), pw.NewDatabase(vague))
	sup, _ := pw.Contained(pw.NewDatabase(vague), pw.NewDatabase(precise))
	fmt.Println(sub, sup)
	// Output: true false
}

// ExampleCertainAnswers computes all certain answers of a join view over
// an incomplete database.
func ExampleCertainAnswers() {
	emp := pw.NewTable("Emp", 2)
	emp.AddTuple(pw.Const("ada"), pw.Const("eng"))
	emp.AddTuple(pw.Const("bob"), pw.Var("d"))
	dept := pw.NewTable("Dept", 2)
	dept.AddTuple(pw.Const("eng"), pw.Const("2"))
	db := pw.NewDatabase(emp, dept)

	q := query.NewAlgebra("located", query.Out{
		Name: "Loc",
		Expr: algebra.Project{
			E:    algebra.Join{L: algebra.Scan("Emp", "n", "d"), R: algebra.Scan("Dept", "d", "f")},
			Cols: []string{"n", "f"},
		},
	})
	ans, _ := pw.CertainAnswers(q, db)
	fmt.Println(ans.Relation("Loc").Facts())
	// Output: [(ada, 2)]
}
